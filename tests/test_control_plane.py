"""Integration tests for the elastic brokering plane (repro.control)."""

import pytest

from repro.check.differ import run_pair
from repro.check.digest import EventJournal, install_probes
from repro.control import AutoscaleConfig, AutoscalePlanner
from repro.core.broker import TopologyEvent
from repro.experiments.configs import smoke_config
from repro.experiments.runner import run_experiment


def _autoscaled(n_clients=40, duration_s=600.0, dps=1, **cfg_kw):
    kw = dict(interval_s=30.0, cooldown_s=60.0, max_dps=6)
    kw.update(cfg_kw)
    return smoke_config(
        decision_points=dps, n_clients=n_clients, duration_s=duration_s,
        n_sites=30, total_cpus=1500,
        autoscale=AutoscaleConfig(**kw),
        check_enabled=True, check_strict=True)


def test_autoscale_grows_under_load():
    """40 clients against GT3 capacity need 2 DPs (model rule), and the
    planner gets there from 1 under the strict invariant checker."""
    result = run_experiment(_autoscaled())
    stats = result.control_stats()
    assert stats["scale_ups"] >= 1
    assert stats["final_dps"] == 2
    assert result.planner.converged_dps() == 2
    assert stats["clients_moved"] > 0
    # The run summary carries the control line.
    assert "autoscale[model/consistent_hash]" in result.summary()


def test_autoscale_sheds_idle_capacity():
    """A tiny fleet on an oversized deployment drains down to 1 DP."""
    result = run_experiment(_autoscaled(
        n_clients=6, dps=4, down_consecutive=2, cooldown_s=30.0))
    stats = result.control_stats()
    assert stats["scale_downs"] >= 1
    assert stats["final_dps"] < 4
    deployment = result.deployment
    # Retired DPs are offline, unwired, and counted separately.
    assert deployment.retired
    for dp_id in deployment.retired:
        dp = deployment.decision_points[dp_id]
        assert not dp.online
        assert dp.retirements == 1
        assert dp.crashes == 0
    # No client is left bound to a retired decision point.
    live = set(deployment.live_dp_ids)
    for client in deployment.clients:
        assert str(client.decision_point) in live


def test_scale_down_then_up_revives_retired_dp():
    """Scale-up prefers reviving a retired DP over deploying a new one."""
    result = run_experiment(_autoscaled(
        n_clients=6, dps=3, down_consecutive=2, cooldown_s=30.0))
    planner = result.planner
    assert planner.actuator.actions  # it did shed
    n_before = len(result.deployment.decision_points)
    action = planner.actuator.scale_up(1)
    assert action.kind == "scale_up"
    # Revived, not created: the dp dict did not grow.
    assert len(result.deployment.decision_points) == n_before
    revives = [e for e in result.deployment.topology_events
               if e.action == "join" and e.revived]
    assert revives and revives[-1].source == "autoscale"


def test_topology_events_are_structured_and_sourced():
    result = run_experiment(_autoscaled())
    events = result.deployment.topology_events
    assert events, "expected at least one scale-up join"
    for e in events:
        assert isinstance(e, TopologyEvent)
        assert e.action in ("join", "leave")
        assert e.source == "autoscale"
        assert e.n_live >= 1
    # The metrics plane counted them too.
    joins = sum(1 for e in events if e.action == "join")
    assert result.sim.metrics.counter_value("topology.join") == joins


def test_gauges_published_per_dp():
    result = run_experiment(_autoscaled())
    metrics = result.sim.metrics
    snap = metrics.snapshot()
    gauges = snap["gauges"]
    assert "control.n_dps" in gauges
    assert gauges["control.n_dps"] == len(result.deployment.live_dp_ids)
    for dp_id in result.deployment.live_dp_ids:
        assert f"dp.queue_depth.{dp_id}" in gauges
        assert f"dp.clients.{dp_id}" in gauges
    # Client-assignment gauges sum to the fleet size.
    total = sum(v for k, v in gauges.items() if k.startswith("dp.clients."))
    assert total == len(result.deployment.clients)


def test_control_actions_are_journaled():
    """Planner actions land as ctl.scale entries in the event journal."""
    journal = EventJournal()
    config = _autoscaled(duration_s=400.0)

    def hook(sim=None, deployment=None, network=None, grid=None, rng=None):
        install_probes(journal, deployment=deployment,
                       sites=grid.sites.values(), sim=sim)

    result = run_experiment(config, deployment_hook=hook)
    ctl = [e for e in journal.entries if e.kind == "ctl.scale"]
    assert len(ctl) == len(result.planner.actuator.actions)
    assert any("scale_up|1->2" in e.detail for e in ctl)


def test_same_seed_runs_are_journal_identical():
    digests = []
    for _ in range(2):
        journal = EventJournal()

        def hook(sim=None, deployment=None, network=None, grid=None,
                 rng=None, journal=journal):
            install_probes(journal, deployment=deployment,
                           sites=grid.sites.values(), sim=sim)

        run_experiment(_autoscaled(duration_s=400.0), deployment_hook=hook)
        digests.append((len(journal), journal.digest))
    assert digests[0] == digests[1]


def test_frozen_pair_is_event_identical():
    report = run_pair("autoscale-frozen", duration_s=120.0)
    assert report.identical, report.describe()


def test_observer_crash_surfaces_structured_leave_and_join():
    """The reconfiguration observer emits on the same topology stream."""
    from repro.core.rebalance import ReconfigurationObserver
    from repro.core.saturation import SaturationDetector
    from repro.experiments.runner import build_experiment
    from repro.resilience.policy import ResilienceConfig

    config = smoke_config(
        decision_points=2, n_clients=10, duration_s=600.0,
        chaos_scenario="dp_crash_restart",
        resilience=ResilienceConfig())
    built = build_experiment(config)
    detector = SaturationDetector(
        built.sim, built.deployment.decision_points.values(),
        interval_s=15.0)
    ReconfigurationObserver(built.sim, built.deployment, detector,
                            cooldown_s=120.0, max_decision_points=3)
    detector.start()
    built.sim.run(until=config.duration_s)
    events = built.deployment.topology_events
    observer_events = [e for e in events if e.source == "observer"]
    leaves = [e for e in observer_events if e.action == "leave"]
    joins = [e for e in observer_events
             if e.action == "join" and e.revived]
    assert leaves, "crash should surface a structured leave"
    assert joins, "restart should surface a structured revived join"
    assert leaves[0].time < joins[0].time


def test_actuator_marks_placement_dirty_on_external_change():
    result = run_experiment(_autoscaled(duration_s=300.0))
    planner = result.planner
    assert not planner.actuator.placement_dirty
    # An out-of-band (manual/observer) membership change dirties the
    # placement; the planner's own actions do not.
    result.deployment.add_decision_point(source="manual")
    assert planner.actuator.placement_dirty
    planner.tick()
    assert not planner.actuator.placement_dirty


def test_workload_profiles_shape_arrivals():
    from repro.workloads import arrival_profile
    from repro.workloads.generator import WorkloadGenerator
    from repro.grid.builder import GridBuilder
    from repro.sim.kernel import Simulator
    from repro.sim.rng import RngRegistry

    sim = Simulator()
    rng = RngRegistry(7)
    grid = GridBuilder(sim, rng.stream("grid")).build(
        n_sites=4, total_cpus=200, n_vos=2, groups_per_vo=2,
        users_per_group=1, name="profiles")
    gen = WorkloadGenerator(grid.vos, __import__(
        "repro.workloads.models", fromlist=["JobModel"]).JobModel(),
        rng.stream("wl"))
    duration = 2000.0
    steady = gen.host_workload("h", duration_s=duration)
    diurnal = gen.host_workload("h", duration_s=duration,
                                profile=arrival_profile("diurnal"))
    bursty = gen.host_workload("h", duration_s=duration,
                               profile=arrival_profile("bursty"))
    # Diurnal thins the trough (mid-run): second quarter vs first.
    q = duration / 4
    first = ((diurnal.arrivals >= 0) & (diurnal.arrivals < q)).sum()
    trough = ((diurnal.arrivals >= q) &
              (diurnal.arrivals < 2 * q)).sum()
    assert trough < first
    assert len(diurnal) < len(steady)
    # Bursty keeps the dense rate inside burst windows: overall volume
    # exceeds steady's one-per-second baseline.
    assert len(bursty) > len(steady)


def test_autoscale_config_validation():
    with pytest.raises(ValueError):
        AutoscaleConfig(policy="nope")
    with pytest.raises(ValueError):
        AutoscaleConfig(placement="nope")
    with pytest.raises(ValueError):
        AutoscaleConfig(min_dps=5, max_dps=2)
    with pytest.raises(ValueError):
        smoke_config(workload_profile="nope")
    with pytest.raises(ValueError):
        smoke_config(autoscale="yes")
