"""Tests for the deployment facade, queue manager, saturation, rebalance."""

import pytest

from repro.core import (
    DIGruberDeployment,
    QueueManager,
    ReconfigurationObserver,
    SaturationDetector,
)
from repro.grid import GridBuilder, Job
from repro.net import ConstantLatency, GT3_PROFILE, Network
from repro.sim import RngRegistry, Simulator
from repro.usla import Agreement, AgreementContext, PolicyEngine, parse_policy


@pytest.fixture
def env():
    sim = Simulator()
    rng = RngRegistry(3)
    net = Network(sim, ConstantLatency(0.05))
    grid = GridBuilder(sim, rng.stream("grid")).uniform(n_sites=5,
                                                        cpus_per_site=20)
    return sim, rng, net, grid


def make_deployment(env, k=3, **kw):
    sim, rng, net, grid = env
    return DIGruberDeployment(sim, net, grid, GT3_PROFILE, rng,
                              n_decision_points=k, **kw)


class TestDeployment:
    def test_dp_creation_and_mesh(self, env):
        dep = make_deployment(env, k=3)
        assert dep.dp_ids == ["dp0", "dp1", "dp2"]
        assert set(dep.dp("dp0").neighbors) == {"dp1", "dp2"}

    def test_start_stop(self, env):
        sim, *_ = env
        dep = make_deployment(env, k=2)
        dep.start()
        assert all(dp.started for dp in dep.decision_points.values())
        with pytest.raises(RuntimeError):
            dep.start()
        dep.stop()
        assert not any(dp.started for dp in dep.decision_points.values())

    def test_add_decision_point_rewires(self, env):
        dep = make_deployment(env, k=2)
        dep.start()
        new = dep.add_decision_point()
        assert new.node_id == "dp2"
        assert new.started
        assert set(dep.dp("dp0").neighbors) == {"dp1", "dp2"}

    def test_publish_usla_everywhere(self, env):
        dep = make_deployment(env, k=2)
        ag = Agreement("a", AgreementContext("grid", "atlas"))
        dep.publish_usla(ag)
        assert all("a" in dp.engine.usla_store
                   for dp in dep.decision_points.values())

    def test_publish_usla_single_dp(self, env):
        dep = make_deployment(env, k=2)
        ag = Agreement("a", AgreementContext("grid", "atlas"))
        dep.publish_usla(ag, dp_id="dp1")
        assert "a" not in dep.dp("dp0").engine.usla_store
        assert "a" in dep.dp("dp1").engine.usla_store

    def test_validation(self, env):
        with pytest.raises(ValueError):
            make_deployment(env, k=0)


class _FakeClient:
    """Minimal stand-in with the rebind interface."""

    def __init__(self, dp):
        self.decision_point = dp

    def rebind(self, dp):
        self.decision_point = dp


class TestRebalancing:
    def test_moves_fraction(self, env):
        dep = make_deployment(env, k=2)
        for _ in range(10):
            dep.attach_client(_FakeClient("dp0"))
        moved = dep.rebalance_clients("dp0", "dp1", fraction=0.5)
        assert moved == 5
        assert len(dep.clients_of("dp0")) == 5
        assert len(dep.clients_of("dp1")) == 5

    def test_unknown_target_rejected(self, env):
        dep = make_deployment(env, k=1)
        with pytest.raises(KeyError):
            dep.rebalance_clients("dp0", "ghost")

    def test_bad_fraction_rejected(self, env):
        dep = make_deployment(env, k=2)
        with pytest.raises(ValueError):
            dep.rebalance_clients("dp0", "dp1", fraction=0.0)


class TestQueueManager:
    def _setup(self, env, usage=0.1):
        sim, rng, net, grid = env
        policy = PolicyEngine(parse_policy("grid:vo0=30%+"))
        released = []
        state = {"usage": usage}
        qm = QueueManager(sim, "vo0", policy,
                          usage_probe=lambda: state["usage"],
                          release=released.append,
                          interval_s=10.0, batch_size=2)
        return sim, qm, released, state

    def _job(self):
        return Job(vo="vo0", group="g", user="u")

    def test_releases_within_share(self, env):
        sim, qm, released, _ = self._setup(env, usage=0.1)
        for _ in range(5):
            qm.enqueue(self._job())
        qm.start()
        sim.run(until=35.0)
        assert len(released) == 5  # 2+2+1 over three ticks
        assert qm.released == 5 and qm.queued == 0

    def test_holds_when_over_share(self, env):
        sim, qm, released, state = self._setup(env, usage=0.5)
        qm.enqueue(self._job())
        qm.start()
        sim.run(until=50.0)
        assert released == []
        assert qm.held_ticks >= 4

    def test_resumes_when_usage_drops(self, env):
        sim, qm, released, state = self._setup(env, usage=0.5)
        qm.enqueue(self._job())
        qm.start()
        sim.run(until=25.0)
        state["usage"] = 0.1
        sim.run(until=45.0)
        assert len(released) == 1

    def test_wrong_vo_rejected(self, env):
        sim, qm, *_ = self._setup(env)
        with pytest.raises(ValueError):
            qm.enqueue(Job(vo="other", group="g", user="u"))

    def test_validation(self, env):
        sim, rng, net, grid = env
        with pytest.raises(ValueError):
            QueueManager(sim, "v", PolicyEngine(), lambda: 0.0,
                         lambda j: None, interval_s=0.0)


class TestSaturationAndRebalance:
    def _saturate_dp(self, env, dep, dp_id="dp0", n=200):
        """Queue enough requests that the backlog outlives the sampling
        interval (the container serves ~2 ops/s)."""
        sim, rng, net, grid = env
        for i in range(n):
            net.rpc(f"load{i}", dp_id, "get_state", {})

    def test_detector_raises_signal(self, env):
        sim, rng, net, grid = env
        dep = make_deployment(env, k=1)
        dep.start()
        det = SaturationDetector(sim, dep.decision_points.values(),
                                 interval_s=30.0, queue_threshold=5)
        det.start()
        self._saturate_dp(env, dep)
        sim.run(until=35.0)
        assert det.signals
        assert det.signals[0].decision_point == "dp0"
        assert det.signals[0].queue_len >= 5

    def test_no_signal_when_idle(self, env):
        sim, rng, net, grid = env
        dep = make_deployment(env, k=1)
        dep.start()
        det = SaturationDetector(sim, dep.decision_points.values(),
                                 interval_s=30.0)
        det.start()
        sim.run(until=120.0)
        assert det.signals == []

    def test_observer_adds_dp_and_moves_clients(self, env):
        sim, rng, net, grid = env
        dep = make_deployment(env, k=1)
        dep.start()
        for _ in range(8):
            dep.attach_client(_FakeClient("dp0"))
        det = SaturationDetector(sim, dep.decision_points.values(),
                                 interval_s=30.0, queue_threshold=5)
        det.start()
        obs = ReconfigurationObserver(sim, dep, det, cooldown_s=60.0,
                                      max_decision_points=3)
        self._saturate_dp(env, dep)
        sim.run(until=35.0)
        assert obs.dps_added == 1
        assert "dp1" in dep.decision_points
        assert len(dep.clients_of("dp1")) == 4

    def test_observer_cooldown_limits_actions(self, env):
        sim, rng, net, grid = env
        dep = make_deployment(env, k=1)
        dep.start()
        dep.attach_client(_FakeClient("dp0"))
        det = SaturationDetector(sim, dep.decision_points.values(),
                                 interval_s=10.0, queue_threshold=2)
        det.start()
        obs = ReconfigurationObserver(sim, dep, det, cooldown_s=1e9,
                                      max_decision_points=10)
        self._saturate_dp(env, dep)
        sim.run(until=100.0)
        # Signals keep firing but the cooldown allows a single action.
        assert obs.dps_added == 1

    def test_observer_rebalances_at_cap(self, env):
        sim, rng, net, grid = env
        dep = make_deployment(env, k=2)
        dep.start()
        for _ in range(8):
            dep.attach_client(_FakeClient("dp0"))
        det = SaturationDetector(sim, dep.decision_points.values(),
                                 interval_s=30.0, queue_threshold=5)
        det.start()
        obs = ReconfigurationObserver(sim, dep, det, cooldown_s=0.0,
                                      max_decision_points=2)
        self._saturate_dp(env, dep)
        sim.run(until=35.0)
        assert obs.dps_added == 0
        assert any(e.action == "rebalance" for e in obs.events)
        assert len(dep.clients_of("dp1")) > 0

    def test_observer_finite_cooldown_spaces_actions(self, env):
        """Back-to-back signals are suppressed inside the cooldown, and
        the next action is allowed once it expires."""
        sim, rng, net, grid = env
        dep = make_deployment(env, k=1)
        dep.start()
        dep.attach_client(_FakeClient("dp0"))
        det = SaturationDetector(sim, dep.decision_points.values(),
                                 interval_s=10.0, queue_threshold=2)
        det.start()
        obs = ReconfigurationObserver(sim, dep, det, cooldown_s=40.0,
                                      max_decision_points=10)
        self._saturate_dp(env, dep)
        sim.run(until=100.0)
        # Signals fire every 10 s while saturated, but actions cannot be
        # closer than the cooldown — and more than one must get through.
        assert obs.dps_added >= 2
        times = [e.time for e in obs.events]
        assert all(b - a >= 40.0 for a, b in zip(times, times[1:]))

    def test_observer_hard_cap_never_exceeded(self, env):
        """Even with a zero cooldown the DP set stops at the cap and the
        observer degrades to rebalancing."""
        sim, rng, net, grid = env
        dep = make_deployment(env, k=1)
        dep.start()
        for _ in range(8):
            dep.attach_client(_FakeClient("dp0"))
        det = SaturationDetector(sim, dep.decision_points.values(),
                                 interval_s=10.0, queue_threshold=2)
        det.start()
        obs = ReconfigurationObserver(sim, dep, det, cooldown_s=0.0,
                                      max_decision_points=3)
        self._saturate_dp(env, dep)
        sim.run(until=200.0)
        assert len(dep.decision_points) == 3
        assert obs.dps_added == 2
        assert any(e.action == "rebalance" for e in obs.events)
        assert sim.metrics.counter_value("reconfig.add_dp") == 2
        assert sim.metrics.counter_value("reconfig.rebalance") == \
            sum(1 for e in obs.events if e.action == "rebalance")

    def test_observer_actions_traced(self, env):
        sim, rng, net, grid = env
        sim.trace.enabled = True
        dep = make_deployment(env, k=1)
        dep.start()
        dep.attach_client(_FakeClient("dp0"))
        det = SaturationDetector(sim, dep.decision_points.values(),
                                 interval_s=10.0, queue_threshold=2)
        det.start()
        ReconfigurationObserver(sim, dep, det, cooldown_s=1e9)
        self._saturate_dp(env, dep)
        sim.run(until=15.0)
        events = sim.trace.events("reconfig.action")
        assert len(events) == 1
        assert events[0].detail["action"] == "add_dp"
        assert events[0].detail["new_dp"] == "dp1"

    def test_detector_validation(self, env):
        sim, *_ = env
        with pytest.raises(ValueError):
            SaturationDetector(sim, [], interval_s=0.0)
        with pytest.raises(ValueError):
            SaturationDetector(sim, [], rate_threshold=1.5)
