"""Tests for the GRUBER client (timeout fallback, channel serialization)."""

import numpy as np
import pytest

from repro.core import DecisionPoint, GruberClient, LeastUsedSelector
from repro.grid import GridBuilder
from repro.net import ConstantLatency, GT3_PROFILE, ContainerProfile, Network
from repro.sim import RngRegistry, Simulator
from repro.workloads import JobModel, TraceRecorder, WorkloadGenerator

FAST_PROFILE = ContainerProfile(
    name="fast", query_service_s=0.1, report_service_s=0.02,
    query_concurrency=1, query_rtts=1, client_overhead_s=0.1,
    instance_service_s=0.05, instance_concurrency=1, instance_rtts=1,
    instance_client_overhead_s=0.05, sigma=0.0)

SLOW_PROFILE = ContainerProfile(
    name="slow", query_service_s=30.0, report_service_s=1.0,
    query_concurrency=1, query_rtts=1, client_overhead_s=0.1,
    instance_service_s=1.0, instance_concurrency=1, instance_rtts=1,
    instance_client_overhead_s=0.1, sigma=0.0)


def build(profile, n_jobs=5, interarrival=20.0, timeout_s=15.0, seed=0):
    sim = Simulator()
    rng = RngRegistry(seed)
    net = Network(sim, ConstantLatency(0.05))
    grid = GridBuilder(sim, rng.stream("grid")).uniform(n_sites=4,
                                                        cpus_per_site=50)
    dp = DecisionPoint(sim, net, "dp0", grid, profile, rng.stream("dp"),
                       monitor_interval_s=600.0)
    dp.start(neighbors=[])
    gen = WorkloadGenerator(grid.vos, JobModel(duration_mean_s=100.0,
                                               min_duration_s=10.0,
                                               cpu_choices=(1,),
                                               cpu_weights=(1.0,)),
                            rng.stream("wl"))
    workload = gen.host_workload("h0", duration_s=n_jobs * interarrival,
                                 interarrival_s=interarrival)
    trace = TraceRecorder()
    client = GruberClient(sim, net, "h0", "dp0", grid, workload,
                          selector=LeastUsedSelector(rng.stream("sel")),
                          profile=profile, rng=rng.stream("cl"),
                          trace=trace, timeout_s=timeout_s,
                          state_response_kb=0.0)
    client.start()
    return sim, client, dp, grid, trace


class TestHandledPath:
    def test_all_jobs_handled_when_fast(self):
        sim, client, dp, grid, trace = build(FAST_PROFILE)
        sim.run(until=200.0)
        assert client.n_handled == 5
        assert client.n_fallback_timeout == 0
        assert client.backlog_len == 0
        assert all(j.handled_by_gruber for j in client.jobs)

    def test_queries_recorded_with_response(self):
        sim, client, dp, grid, trace = build(FAST_PROFILE)
        sim.run(until=200.0)
        q = trace.query_arrays()
        assert trace.n_queries == 5
        assert not q["timed_out"].any()
        assert np.all(q["response_s"] > 0.3)  # overhead + rtt + service

    def test_dispatch_reaches_site_and_runs(self):
        sim, client, dp, grid, trace = build(FAST_PROFILE)
        sim.run(until=400.0)
        assert all(j.completed_at is not None for j in client.jobs)

    def test_dp_view_reflects_reports(self):
        sim, client, dp, grid, trace = build(FAST_PROFILE)
        sim.run(until=15.0)  # first job dispatched, none finished
        busy = sum(dp.engine.view.estimated_busy(s) for s in grid.site_names)
        assert busy == 1.0

    def test_accuracy_near_perfect_with_fresh_view(self):
        sim, client, dp, grid, trace = build(FAST_PROFILE)
        sim.run(until=200.0)
        accs = [j.scheduling_accuracy for j in client.jobs]
        assert all(a == pytest.approx(1.0) for a in accs)


class TestTimeoutPath:
    def test_slow_service_triggers_timeout_fallback(self):
        sim, client, dp, grid, trace = build(SLOW_PROFILE)
        sim.run(until=300.0)
        assert client.n_fallback_timeout >= 1
        first = client.jobs[0]
        assert not first.handled_by_gruber
        # Job was dispatched at ~timeout, well before the 30 s service.
        assert first.dispatched_at < 16.0

    def test_late_response_still_recorded(self):
        sim, client, dp, grid, trace = build(SLOW_PROFILE, n_jobs=1)
        sim.run(until=300.0)
        q = trace.query_arrays()
        assert q["timed_out"][0]
        assert q["response_s"][0] > 15.0  # the full (late) response time

    def test_channel_busy_jobs_queue_in_backlog(self):
        # Jobs every 1 s against a ~31 s brokering op: the channel
        # serializes, so submissions are delayed (paper §4.4.2).
        sim, client, dp, grid, trace = build(SLOW_PROFILE, n_jobs=30,
                                             interarrival=1.0)
        sim.run(until=100.0)
        processed = client.n_handled + client.n_fallback_timeout
        assert processed <= 4  # ~3 queries fit in 100 s
        assert client.backlog_peak >= 20
        assert processed + client.backlog_len + (1 if client.busy else 0) == 30

    def test_backlog_drains_in_order(self):
        sim, client, dp, grid, trace = build(SLOW_PROFILE, n_jobs=10,
                                             interarrival=1.0)
        sim.run(until=400.0)
        created = [j.created_at for j in client.jobs]
        assert created == sorted(created)
        # Every job the channel reached was dispatched somewhere.
        assert all(j.site is not None for j in client.jobs
                   if j is not client.jobs[-1] or not client.busy)


class TestRebind:
    def test_rebind_changes_target(self):
        sim, client, dp, grid, trace = build(FAST_PROFILE, n_jobs=5,
                                             interarrival=20.0)
        net = client.network
        dp2 = DecisionPoint(sim, net, "dp1", grid, FAST_PROFILE,
                            RngRegistry(9).stream("dp1"),
                            monitor_interval_s=600.0)
        dp2.start(neighbors=[])
        sim.run(until=30.0)
        client.rebind("dp1")
        sim.run(until=200.0)
        assert dp2.engine.queries_served > 0

    def test_double_start_rejected(self):
        sim, client, dp, grid, trace = build(FAST_PROFILE)
        with pytest.raises(RuntimeError):
            client.start()
