"""Tests for decision points, monitor, and the sync protocol."""

import pytest

from repro.core import DecisionPoint, DisseminationStrategy, SiteMonitor
from repro.core.engine import GruberEngine
from repro.grid import Cluster, GridBuilder, Job, Site
from repro.net import ConstantLatency, GT3_PROFILE, Network
from repro.sim import RngRegistry, Simulator
from repro.usla import Agreement, AgreementContext


@pytest.fixture
def env():
    sim = Simulator()
    rng = RngRegistry(0)
    net = Network(sim, ConstantLatency(0.05))
    grid = GridBuilder(sim, rng.stream("grid")).uniform(
        n_sites=4, cpus_per_site=16)
    return sim, rng, net, grid


def make_dp(env, node_id="dp0", **kw):
    sim, rng, net, grid = env
    defaults = dict(monitor_interval_s=60.0, sync_interval_s=30.0)
    defaults.update(kw)
    return DecisionPoint(sim, net, node_id, grid, GT3_PROFILE,
                         rng.stream(f"dp:{node_id}"), **defaults)


class TestSiteMonitor:
    def test_sweep_feeds_engine(self, env):
        sim, rng, net, grid = env
        engine = GruberEngine("m", {s.name: s.total_cpus
                                    for s in grid.sites.values()})
        site = grid.site(grid.site_names[0])
        site.submit(Job(vo="v", group="g", user="u", cpus=4, duration_s=1000.0))
        mon = SiteMonitor(sim, grid, engine, interval_s=60.0)
        mon.sweep()
        assert engine.availabilities()[site.name] == 12.0
        assert mon.sweeps == 1

    def test_periodic_sweeps(self, env):
        sim, rng, net, grid = env
        engine = GruberEngine("m", {s.name: s.total_cpus
                                    for s in grid.sites.values()})
        mon = SiteMonitor(sim, grid, engine, interval_s=60.0)
        mon.start(initial=True)
        sim.run(until=200.0)
        assert mon.sweeps == 4  # t=0, 60, 120, 180

    def test_stop(self, env):
        sim, rng, net, grid = env
        engine = GruberEngine("m", {s.name: s.total_cpus
                                    for s in grid.sites.values()})
        mon = SiteMonitor(sim, grid, engine, interval_s=10.0)
        mon.start(initial=False)
        sim.run(until=25.0)
        mon.stop()
        sim.run(until=100.0)
        assert mon.sweeps == 2

    def test_double_start_rejected(self, env):
        sim, rng, net, grid = env
        engine = GruberEngine("m", {s.name: s.total_cpus
                                    for s in grid.sites.values()})
        mon = SiteMonitor(sim, grid, engine)
        mon.start()
        with pytest.raises(RuntimeError):
            mon.start()


class TestDecisionPointHandlers:
    def test_get_state_returns_availability(self, env):
        sim, rng, net, grid = env
        dp = make_dp(env)
        dp.start(neighbors=[])
        results = []
        ev = net.rpc("client", "dp0", "get_state", {"vo": "vo0"})
        ev.add_callback(lambda e: results.append(e.value))
        sim.run(until=30.0)
        assert results and set(results[0]) == set(grid.site_names)
        assert all(v == 16.0 for v in results[0].values())

    def test_report_dispatch_updates_view(self, env):
        sim, rng, net, grid = env
        dp = make_dp(env)
        dp.start(neighbors=[])
        target = grid.site_names[0]
        net.rpc("client", "dp0", "report_dispatch",
                {"site": target, "vo": "vo0", "cpus": 8})
        sim.run(until=10.0)
        assert dp.engine.view.estimated_free(target) == 8.0

    def test_query_consumes_container_time(self, env):
        sim, rng, net, grid = env
        dp = make_dp(env)
        dp.start(neighbors=[])
        done_at = []
        ev = net.rpc("client", "dp0", "get_state", {})
        ev.add_callback(lambda e: done_at.append(sim.now))
        sim.run(until=30.0)
        # 2 x 0.05 latency + ~0.42 s service (lognormal).
        assert done_at and done_at[0] > 0.2

    def test_create_instance(self, env):
        sim, rng, net, grid = env
        dp = make_dp(env)
        dp.start(neighbors=[])
        results = []
        net.rpc("client", "dp0", "create_instance", {}).add_callback(
            lambda e: results.append(e.value))
        sim.run(until=10.0)
        assert results == [{"created": True}]

    def test_state_response_kb_scales_with_sites(self, env):
        dp = make_dp(env, site_state_kb=0.06)
        assert dp.state_response_kb == pytest.approx(4 * 0.06)

    def test_double_start_rejected(self, env):
        dp = make_dp(env)
        dp.start(neighbors=[])
        with pytest.raises(RuntimeError):
            dp.start()

    def test_load_snapshot_fields(self, env):
        dp = make_dp(env)
        snap = dp.load_snapshot()
        assert {"node", "time", "queue_len", "in_service",
                "ops_last_minute", "capacity_qps"} <= set(snap)


class TestSyncProtocol:
    def test_records_flow_between_peers(self, env):
        sim, rng, net, grid = env
        dp0 = make_dp(env, "dp0", sync_interval_s=30.0)
        dp1 = make_dp(env, "dp1", sync_interval_s=30.0)
        dp0.start(neighbors=["dp1"])
        dp1.start(neighbors=["dp0"])
        target = grid.site_names[0]
        sim.run(until=1.0)  # past the initial monitor sweep
        dp0.engine.record_local_dispatch(target, "vo0", cpus=8, now=sim.now)
        # Before a sync round, dp1 is stale.
        assert dp1.engine.view.estimated_free(target) == 16.0
        sim.run(until=40.0)
        assert dp1.engine.view.estimated_free(target) == 8.0
        assert dp1.sync.records_adopted >= 1

    def test_no_sync_when_strategy_none(self, env):
        sim, rng, net, grid = env
        dp0 = make_dp(env, "dp0", strategy=DisseminationStrategy.NONE)
        dp1 = make_dp(env, "dp1", strategy=DisseminationStrategy.NONE)
        dp0.start(neighbors=["dp1"])
        dp1.start(neighbors=["dp0"])
        dp0.engine.record_local_dispatch(grid.site_names[0], "vo0", 8, sim.now)
        sim.run(until=120.0)
        assert dp1.sync.records_received == 0

    def test_usla_dissemination(self, env):
        sim, rng, net, grid = env
        kw = dict(strategy=DisseminationStrategy.USAGE_AND_USLA,
                  sync_interval_s=30.0)
        dp0 = make_dp(env, "dp0", **kw)
        dp1 = make_dp(env, "dp1", **kw)
        dp0.start(neighbors=["dp1"])
        dp1.start(neighbors=["dp0"])
        ag = Agreement("grid-atlas", AgreementContext("grid", "atlas"))
        dp0.engine.usla_store.publish(ag)
        sim.run(until=45.0)
        assert "grid-atlas" in dp1.engine.usla_store

    def test_flooding_reaches_across_line_topology(self, env):
        """Records relayed hop-by-hop reach non-neighbors."""
        sim, rng, net, grid = env
        dps = [make_dp(env, f"dp{i}", sync_interval_s=20.0,
                       monitor_interval_s=300.0) for i in range(3)]
        dps[0].start(neighbors=["dp1"])
        dps[1].start(neighbors=["dp0", "dp2"])
        dps[2].start(neighbors=["dp1"])
        target = grid.site_names[0]
        sim.run(until=1.0)  # past the initial monitor sweep
        dps[0].engine.record_local_dispatch(target, "vo0", cpus=4, now=sim.now)
        sim.run(until=70.0)  # >= 2 sync rounds with jitter
        assert dps[2].engine.view.estimated_free(target) == 12.0

    def test_monitor_plus_records_no_double_count(self, env):
        """A dispatch reported and then observed by the monitor is not
        counted twice."""
        sim, rng, net, grid = env
        dp0 = make_dp(env, "dp0", monitor_interval_s=50.0)
        dp1 = make_dp(env, "dp1", monitor_interval_s=50.0,
                      sync_interval_s=30.0)
        dp0.start(neighbors=["dp1"])
        dp1.start(neighbors=["dp0"])
        target = grid.site_names[0]
        job = Job(vo="vo0", group="g", user="u", cpus=8, duration_s=10000.0)
        grid.site(target).submit(job)  # ground truth: 8 busy
        dp0.engine.record_local_dispatch(target, "vo0", cpus=8, now=sim.now)
        sim.run(until=200.0)  # several sync + monitor rounds
        assert dp0.engine.view.estimated_busy(target) == 8.0
        assert dp1.engine.view.estimated_busy(target) == 8.0
