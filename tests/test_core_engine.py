"""Tests for the GRUBER engine (availability + USLA filtering)."""

import pytest

from repro.core import GruberEngine
from repro.usla import Agreement, AgreementContext, FairShareRule, ServiceTerm, ShareKind


@pytest.fixture
def engine():
    return GruberEngine("dp0", {"s0": 100, "s1": 50})


def publish_share(engine, provider, consumer, pct, kind=ShareKind.UPPER_LIMIT):
    ag = Agreement(
        name=f"{provider}-{consumer}",
        context=AgreementContext(provider=provider, consumer=consumer),
        terms=[ServiceTerm("cpu", FairShareRule(provider, consumer, pct, kind))],
    )
    engine.usla_store.publish(ag)
    engine.invalidate_policy_cache()


class TestAvailabilities:
    def test_initial_full(self, engine):
        assert engine.availabilities() == {"s0": 100.0, "s1": 50.0}
        assert engine.queries_served == 1

    def test_reflects_local_dispatches(self, engine):
        engine.record_local_dispatch("s0", "vo0", cpus=30, now=1.0)
        assert engine.availabilities()["s0"] == 70.0
        assert engine.dispatches_recorded == 1

    def test_sequence_numbers_increment(self, engine):
        r1 = engine.record_local_dispatch("s0", "vo0", 1, now=1.0)
        r2 = engine.record_local_dispatch("s0", "vo0", 1, now=2.0)
        assert r2.seq == r1.seq + 1
        assert r1.origin == "dp0"

    def test_merge_remote_records(self, engine):
        r = GruberEngine("dp1", {"s0": 100, "s1": 50}) \
            .record_local_dispatch("s1", "cms", 10, now=5.0)
        assert engine.merge_remote_records([r]) == 1
        assert engine.availabilities()["s1"] == 40.0
        # Merging again is a no-op (dedup).
        assert engine.merge_remote_records([r]) == 0

    def test_monitor_refresh(self, engine):
        engine.record_local_dispatch("s0", "vo0", 30, now=1.0)
        engine.on_monitor_refresh({"s0": 10.0, "s1": 0.0}, now=50.0)
        assert engine.availabilities()["s0"] == 90.0


class TestUslaFiltering:
    def test_not_filtered_when_disabled(self, engine):
        publish_share(engine, "s0", "atlas", 20.0)
        assert engine.availabilities(vo="atlas")["s0"] == 100.0

    def test_filtered_by_entitlement(self):
        engine = GruberEngine("dp0", {"s0": 100}, usla_aware=True)
        publish_share(engine, "s0", "atlas", 20.0)
        # Entitled to 20% of 100 CPUs, none used yet -> 20 visible.
        assert engine.availabilities(vo="atlas")["s0"] == 20.0

    def test_entitlement_shrinks_with_usage(self):
        engine = GruberEngine("dp0", {"s0": 100}, usla_aware=True)
        publish_share(engine, "s0", "atlas", 20.0)
        engine.record_local_dispatch("s0", "atlas", cpus=15, now=1.0)
        assert engine.availabilities(vo="atlas")["s0"] == 5.0

    def test_exhausted_entitlement_zero(self):
        engine = GruberEngine("dp0", {"s0": 100}, usla_aware=True)
        publish_share(engine, "s0", "atlas", 20.0)
        engine.record_local_dispatch("s0", "atlas", cpus=25, now=1.0)
        assert engine.availabilities(vo="atlas")["s0"] == 0.0

    def test_other_vo_unaffected(self):
        engine = GruberEngine("dp0", {"s0": 100}, usla_aware=True)
        publish_share(engine, "s0", "atlas", 20.0)
        assert engine.availabilities(vo="cms")["s0"] == 100.0

    def test_cap_respects_free_cpus_too(self):
        engine = GruberEngine("dp0", {"s0": 100}, usla_aware=True)
        publish_share(engine, "s0", "atlas", 90.0)
        engine.record_local_dispatch("s0", "cms", cpus=95, now=1.0)
        # Only 5 CPUs free grid-truth-wise, entitlement 90 -> min wins.
        assert engine.availabilities(vo="atlas")["s0"] == 5.0

    def test_policy_cache_invalidation(self):
        engine = GruberEngine("dp0", {"s0": 100}, usla_aware=True)
        assert engine.availabilities(vo="atlas")["s0"] == 100.0
        publish_share(engine, "s0", "atlas", 10.0)
        assert engine.availabilities(vo="atlas")["s0"] == 10.0


class TestGroupLevelFiltering:
    """§4.1: fair allocation across groups *within* a VO (recursive USLAs)."""

    def _engine(self):
        engine = GruberEngine("dp0", {"s0": 100}, usla_aware=True)
        publish_share(engine, "s0", "atlas", 50.0)          # VO gets 50%
        publish_share(engine, "atlas", "atlas.higgs", 40.0)  # group: 40% of that
        return engine

    def test_group_capped_within_vo_share(self):
        engine = self._engine()
        # higgs: 40% of the VO's 50-CPU entitlement = 20 CPUs.
        assert engine.availabilities(vo="atlas", group="higgs")["s0"] == 20.0
        # The VO as a whole still sees its full 50.
        assert engine.availabilities(vo="atlas")["s0"] == 50.0

    def test_group_usage_consumes_group_headroom(self):
        engine = self._engine()
        engine.record_local_dispatch("s0", "atlas", cpus=15, now=1.0,
                                     group="higgs")
        assert engine.availabilities(vo="atlas", group="higgs")["s0"] == 5.0
        # VO-level headroom also shrank (group usage is VO usage).
        assert engine.availabilities(vo="atlas")["s0"] == 35.0

    def test_sibling_group_unaffected_by_group_cap(self):
        engine = self._engine()
        engine.record_local_dispatch("s0", "atlas", cpus=20, now=1.0,
                                     group="higgs")
        # An unlisted sibling group is bounded only by the VO share.
        assert engine.availabilities(vo="atlas", group="susy")["s0"] == 30.0

    def test_group_records_survive_sync_roundtrip(self):
        a = self._engine()
        rec = a.record_local_dispatch("s0", "atlas", cpus=10, now=1.0,
                                      group="higgs")
        b = GruberEngine("dp1", {"s0": 100}, usla_aware=True)
        publish_share(b, "s0", "atlas", 50.0)
        publish_share(b, "atlas", "atlas.higgs", 40.0)
        b.merge_remote_records([rec], now=2.0)
        assert b.availabilities(vo="atlas", group="higgs")["s0"] == 10.0


class TestUtilizationView:
    def test_fractions(self, engine):
        engine.record_local_dispatch("s1", "vo0", cpus=25, now=1.0)
        view = engine.utilization_view()
        assert view["s1"] == pytest.approx(0.5)
        assert view["s0"] == 0.0
