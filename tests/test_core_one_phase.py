"""Tests for the one-phase brokering protocol and the GT4-C profile."""

import pytest

from repro.core import DecisionPoint, GruberClient, LeastUsedSelector
from repro.experiments import smoke_config, run_experiment
from repro.grid import GridBuilder
from repro.net import (
    ConstantLatency,
    GT3_PROFILE,
    GT4_PROFILE,
    GT4C_PROFILE,
    Network,
)
from repro.sim import RngRegistry, Simulator
from repro.workloads import JobModel, TraceRecorder, WorkloadGenerator


class TestGT4CProfile:
    def test_faster_than_both_java_containers(self):
        assert GT4C_PROFILE.query_capacity_qps > 2 * GT3_PROFILE.query_capacity_qps
        assert GT4C_PROFILE.query_capacity_qps > 2 * GT4_PROFILE.query_capacity_qps
        assert GT4C_PROFILE.client_overhead_s < GT4_PROFILE.client_overhead_s


def build_one_phase(n_jobs=5, interarrival=20.0):
    sim = Simulator()
    rng = RngRegistry(0)
    net = Network(sim, ConstantLatency(0.05))
    grid = GridBuilder(sim, rng.stream("grid")).uniform(n_sites=4,
                                                        cpus_per_site=50)
    dp = DecisionPoint(sim, net, "dp0", grid, GT3_PROFILE, rng.stream("dp"),
                       monitor_interval_s=600.0)
    dp.start(neighbors=[])
    gen = WorkloadGenerator(grid.vos,
                            JobModel(duration_mean_s=100.0, min_duration_s=10.0,
                                     cpu_choices=(1,), cpu_weights=(1.0,)),
                            rng.stream("wl"))
    workload = gen.host_workload("h0", duration_s=n_jobs * interarrival,
                                 interarrival_s=interarrival)
    trace = TraceRecorder()
    client = GruberClient(sim, net, "h0", "dp0", grid, workload,
                          selector=LeastUsedSelector(rng.stream("sel")),
                          profile=GT3_PROFILE, rng=rng.stream("cl"),
                          trace=trace, timeout_s=15.0,
                          state_response_kb=0.0, one_phase=True)
    client.start()
    return sim, client, dp, grid, trace


class TestOnePhaseProtocol:
    def test_jobs_brokered_server_side(self):
        sim, client, dp, grid, trace = build_one_phase()
        sim.run(until=300.0)
        assert client.n_handled == 5
        assert all(j.handled_by_gruber for j in client.jobs)
        assert all(j.site is not None for j in client.jobs)

    def test_dispatch_recorded_at_dp(self):
        sim, client, dp, grid, trace = build_one_phase()
        sim.run(until=300.0)
        assert dp.engine.dispatches_recorded == 5

    def test_single_rpc_per_job(self):
        sim, client, dp, grid, trace = build_one_phase()
        sim.run(until=300.0)
        # One RPC per job (no report_dispatch), vs 2 for two-phase.
        assert client.network.stats.rpcs_started == 5
        assert client.network.stats.per_op.get("broker_job") == 5
        assert "report_dispatch" not in client.network.stats.per_op

    def test_one_phase_faster_than_two_phase(self):
        """End-to-end: one-phase responses beat two-phase on the same load."""
        two = run_experiment(smoke_config(n_clients=8, duration_s=300.0))
        one = run_experiment(smoke_config(n_clients=8, duration_s=300.0,
                                          one_phase=True))
        assert (one.diperf().response_stats().average
                < two.diperf().response_stats().average)

    def test_lan_config_runs(self):
        res = run_experiment(smoke_config(n_clients=6, duration_s=200.0,
                                          lan=True))
        # LAN + small grid: responses are dominated by client overhead.
        assert res.diperf().response_stats().average < 12.0
        assert res.n_jobs > 0
