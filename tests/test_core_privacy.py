"""Tests for private brokers (§2.3) and new workload/trace features."""

import numpy as np
import pytest

from repro.core import DecisionPoint, DisseminationStrategy
from repro.grid import GridBuilder, VORegistry
from repro.net import ConstantLatency, GT3_PROFILE, Network
from repro.sim import RngRegistry, Simulator
from repro.usla import Agreement, AgreementContext
from repro.workloads import JobModel, TraceRecorder, WorkloadGenerator


@pytest.fixture
def env():
    sim = Simulator()
    rng = RngRegistry(12)
    net = Network(sim, ConstantLatency(0.05))
    grid = GridBuilder(sim, rng.stream("grid")).uniform(n_sites=3,
                                                        cpus_per_site=16)
    return sim, rng, net, grid


def make_dp(env, node_id, private=False, strategy=None):
    sim, rng, net, grid = env
    kw = dict(monitor_interval_s=600.0, sync_interval_s=20.0,
              private=private)
    if strategy is not None:
        kw["strategy"] = strategy
    return DecisionPoint(sim, net, node_id, grid, GT3_PROFILE,
                         rng.stream(f"dp:{node_id}"), **kw)


class TestPrivateBroker:
    def test_private_dispatches_stay_private(self, env):
        sim, rng, net, grid = env
        public = make_dp(env, "pub")
        private = make_dp(env, "priv", private=True)
        public.start(neighbors=["priv"])
        private.start(neighbors=["pub"])
        sim.run(until=1.0)
        target = grid.site_names[0]
        private.engine.record_local_dispatch(target, "vo0", 8, now=sim.now)
        sim.run(until=60.0)
        # The public peer never learns of the private broker's work.
        assert public.engine.view.estimated_free(target) == 16.0

    def test_private_broker_still_consumes_the_flood(self, env):
        sim, rng, net, grid = env
        public = make_dp(env, "pub")
        private = make_dp(env, "priv", private=True)
        public.start(neighbors=["priv"])
        private.start(neighbors=["pub"])
        sim.run(until=1.0)
        target = grid.site_names[0]
        public.engine.record_local_dispatch(target, "vo0", 8, now=sim.now)
        sim.run(until=60.0)
        assert private.engine.view.estimated_free(target) == 8.0

    def test_private_broker_relays_others_records(self, env):
        """Privacy hides its own work, not the public flood (line topo)."""
        sim, rng, net, grid = env
        a = make_dp(env, "a")
        mid = make_dp(env, "mid", private=True)
        b = make_dp(env, "b")
        a.start(neighbors=["mid"])
        mid.start(neighbors=["a", "b"])
        b.start(neighbors=["mid"])
        sim.run(until=1.0)
        target = grid.site_names[0]
        a.engine.record_local_dispatch(target, "vo0", 4, now=sim.now)
        sim.run(until=90.0)
        assert b.engine.view.estimated_free(target) == 12.0

    def test_private_uslas_not_exported(self, env):
        sim, rng, net, grid = env
        strat = DisseminationStrategy.USAGE_AND_USLA
        private = make_dp(env, "priv", private=True, strategy=strat)
        public = make_dp(env, "pub", strategy=strat)
        private.start(neighbors=["pub"])
        public.start(neighbors=["priv"])
        private.engine.usla_store.publish(
            Agreement("secret", AgreementContext("p", "c")))
        sim.run(until=60.0)
        assert "secret" not in public.engine.usla_store


class TestDiurnalWorkload:
    def _gen(self):
        vos = VORegistry()
        vos.create("v", n_groups=1, users_per_group=1)
        return WorkloadGenerator(vos, JobModel(),
                                 RngRegistry(3).stream("w"))

    def test_zero_amplitude_keeps_everything(self):
        gen = self._gen()
        wl = gen.host_workload("h", duration_s=1000.0, diurnal_amplitude=0.0)
        assert len(wl) == 1000

    def test_amplitude_thins_trough(self):
        gen = self._gen()
        wl = gen.host_workload("h", duration_s=86400.0, interarrival_s=10.0,
                               diurnal_amplitude=0.8)
        arrivals = wl.arrivals
        # Peak (around t=0 and t=86400) keeps nearly all arrivals;
        # trough (t ~= 43200) loses ~80%.
        peak = np.sum(arrivals < 8640)
        trough = np.sum((arrivals > 38880) & (arrivals < 47520))
        assert trough < 0.5 * peak
        assert len(wl) < 86400 / 10.0

    def test_amplitude_validation(self):
        gen = self._gen()
        with pytest.raises(ValueError):
            gen.host_workload("h", duration_s=10.0, diurnal_amplitude=1.0)


class TestJobCsvRoundtrip:
    def test_roundtrip(self, tmp_path):
        from repro.grid import Job
        rec = TraceRecorder()
        j = Job(vo="v", group="g", user="u", cpus=2, duration_s=50.0)
        j.mark_created(0.0)
        j.mark_dispatched(1.0, "siteZ")
        j.mark_running(2.0)
        j.mark_completed(52.0)
        j.handled_by_gruber = True
        j.scheduling_accuracy = 0.75
        rec.record_job(j)
        path = str(tmp_path / "jobs.csv")
        rec.save_jobs_csv(path)
        loaded = TraceRecorder.load_jobs_csv(path)
        a, b = rec.job_arrays(), loaded.job_arrays()
        for col in ("jid", "cpus", "handled", "failed"):
            assert np.array_equal(a[col], b[col])
        for col in ("created_at", "completed_at", "accuracy", "queue_time_s"):
            assert np.allclose(a[col], b[col], equal_nan=True)
        assert b["site"][0] == "siteZ"

    def test_bad_header_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("nope\n")
        with pytest.raises(ValueError):
            TraceRecorder.load_jobs_csv(str(p))
