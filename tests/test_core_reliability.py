"""Tests for §2.2 reliability: outages, graceful degradation, failover."""

import pytest

from repro.core import (
    DIGruberDeployment,
    DecisionPoint,
    GruberClient,
    LeastUsedSelector,
    ReconfigurationObserver,
    SaturationDetector,
)
from repro.grid import GridBuilder
from repro.net import ConstantLatency, GT3_PROFILE, Network
from repro.sim import RngRegistry, Simulator
from repro.workloads import JobModel, TraceRecorder, WorkloadGenerator

from tests.test_core_client import FAST_PROFILE


@pytest.fixture
def env():
    sim = Simulator()
    rng = RngRegistry(8)
    net = Network(sim, ConstantLatency(0.05))
    grid = GridBuilder(sim, rng.stream("grid")).uniform(n_sites=4,
                                                        cpus_per_site=50)
    return sim, rng, net, grid


class TestTransportOutage:
    def test_offline_endpoint_never_answers(self, env):
        sim, rng, net, grid = env
        dp = DecisionPoint(sim, net, "dp0", grid, GT3_PROFILE,
                           rng.stream("dp"), monitor_interval_s=600.0)
        dp.start(neighbors=[])
        dp.crash()
        ev = net.rpc("client", "dp0", "get_state", {})
        sim.run(until=100.0)
        assert not ev.triggered  # silence, not an error

    def test_offline_endpoint_drops_oneways(self, env):
        sim, rng, net, grid = env
        dp0 = DecisionPoint(sim, net, "dp0", grid, GT3_PROFILE,
                            rng.stream("a"), sync_interval_s=20.0)
        dp1 = DecisionPoint(sim, net, "dp1", grid, GT3_PROFILE,
                            rng.stream("b"), sync_interval_s=20.0)
        dp0.start(neighbors=["dp1"])
        dp1.start(neighbors=["dp0"])
        dp1.crash()
        sim.run(until=1.0)
        dp0.engine.record_local_dispatch(grid.site_names[0], "vo0", 4,
                                         now=sim.now)
        sim.run(until=60.0)
        assert dp1.sync.records_received == 0

    def test_recover_restores_service(self, env):
        sim, rng, net, grid = env
        dp = DecisionPoint(sim, net, "dp0", grid, GT3_PROFILE,
                           rng.stream("dp"), monitor_interval_s=600.0)
        dp.start(neighbors=[])
        dp.crash()
        dp.recover()
        ev = net.rpc("client", "dp0", "get_state", {})
        sim.run(until=30.0)
        assert ev.ok

    def test_crash_idempotent(self, env):
        sim, rng, net, grid = env
        dp = DecisionPoint(sim, net, "dp0", grid, GT3_PROFILE,
                           rng.stream("dp"))
        dp.start(neighbors=[])
        dp.crash()
        dp.crash()
        dp.recover()
        dp.recover()
        assert dp.online and dp.started


class TestClientGracefulDegradation:
    def test_client_survives_dead_dp(self, env):
        """All jobs still get placed (randomly) when the DP is dead."""
        sim, rng, net, grid = env
        dp = DecisionPoint(sim, net, "dp0", grid, FAST_PROFILE,
                           rng.stream("dp"), monitor_interval_s=600.0)
        dp.start(neighbors=[])
        dp.crash()
        gen = WorkloadGenerator(grid.vos,
                                JobModel(duration_mean_s=50.0,
                                         min_duration_s=10.0,
                                         cpu_choices=(1,), cpu_weights=(1.0,)),
                                rng.stream("wl"))
        workload = gen.host_workload("h0", duration_s=500.0,
                                     interarrival_s=100.0)
        trace = TraceRecorder()
        client = GruberClient(sim, net, "h0", "dp0", grid, workload,
                              selector=LeastUsedSelector(rng.stream("s")),
                              profile=FAST_PROFILE, rng=rng.stream("c"),
                              trace=trace, timeout_s=15.0,
                              state_response_kb=0.0)
        client.start()
        sim.run(until=2000.0)
        assert client.n_fallback_timeout == 5
        assert client.n_abandoned == 5       # waited out the grace period
        assert all(j.site is not None for j in client.jobs)
        q = trace.query_arrays()
        assert q["timed_out"].all()


class TestFailover:
    def _deployment(self, env, k=3):
        sim, rng, net, grid = env
        dep = DIGruberDeployment(sim, net, grid, GT3_PROFILE, rng,
                                 n_decision_points=k)
        dep.start()
        return dep

    class _FakeClient:
        def __init__(self, dp):
            self.decision_point = dp

        def rebind(self, dp):
            self.decision_point = dp

    def test_detector_raises_down_signal(self, env):
        sim, rng, net, grid = env
        dep = self._deployment(env)
        det = SaturationDetector(sim, dep.decision_points.values(),
                                 interval_s=30.0)
        det.start()
        dep.dp("dp1").crash()
        sim.run(until=35.0)
        down = [s for s in det.signals if s.reason == "down"]
        assert down and down[0].decision_point == "dp1"

    def test_observer_evacuates_dead_dp(self, env):
        sim, rng, net, grid = env
        dep = self._deployment(env)
        for _ in range(6):
            dep.attach_client(self._FakeClient("dp1"))
        det = SaturationDetector(sim, dep.decision_points.values(),
                                 interval_s=30.0)
        det.start()
        ReconfigurationObserver(sim, dep, det, cooldown_s=1e9)
        dep.dp("dp1").crash()
        sim.run(until=35.0)
        assert dep.clients_of("dp1") == []
        # Evacuation bypassed the (infinite) cooldown.
        assert len(dep.clients_of("dp0")) + len(dep.clients_of("dp2")) == 6

    def test_failover_event_recorded(self, env):
        sim, rng, net, grid = env
        dep = self._deployment(env)
        dep.attach_client(self._FakeClient("dp2"))
        det = SaturationDetector(sim, dep.decision_points.values(),
                                 interval_s=30.0)
        det.start()
        obs = ReconfigurationObserver(sim, dep, det)
        dep.dp("dp2").crash()
        sim.run(until=35.0)
        assert any(e.action == "failover" for e in obs.events)

    def test_no_live_target_keeps_clients(self, env):
        sim, rng, net, grid = env
        dep = self._deployment(env, k=1)
        dep.attach_client(self._FakeClient("dp0"))
        det = SaturationDetector(sim, dep.decision_points.values(),
                                 interval_s=30.0)
        det.start()
        ReconfigurationObserver(sim, dep, det)
        dep.dp("dp0").crash()
        sim.run(until=65.0)
        # Nowhere to fail over to; clients stay (degrading gracefully).
        assert len(dep.clients_of("dp0")) == 1
