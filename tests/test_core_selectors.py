"""Tests for site-selector policies."""

import pytest

from repro.core import (
    LeastRecentlyUsedSelector,
    LeastUsedSelector,
    RandomSelector,
    RoundRobinSelector,
    make_selector,
)
from repro.sim import RngRegistry


@pytest.fixture
def rng():
    return RngRegistry(0).stream("selector")


AVAIL = {"a": 10.0, "b": 50.0, "c": 30.0, "d": 0.0}


class TestRandomSelector:
    def test_only_fitting_sites(self, rng):
        sel = RandomSelector(rng)
        picks = {sel.select(AVAIL, cpus=20) for _ in range(50)}
        assert picks <= {"b", "c"}
        assert len(picks) == 2  # both get picked eventually

    def test_none_when_nothing_fits(self, rng):
        assert RandomSelector(rng).select(AVAIL, cpus=1000) is None

    def test_select_any_ignores_availability(self, rng):
        sel = RandomSelector(rng)
        picks = {sel.select_any(list(AVAIL)) for _ in range(100)}
        assert picks == {"a", "b", "c", "d"}

    def test_select_any_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            RandomSelector(rng).select_any([])


class TestRoundRobin:
    def test_cycles_in_name_order(self):
        sel = RoundRobinSelector()
        picks = [sel.select(AVAIL, cpus=5) for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_skips_unfitting(self):
        sel = RoundRobinSelector()
        picks = [sel.select(AVAIL, cpus=20) for _ in range(4)]
        assert picks == ["b", "c", "b", "c"]

    def test_none_when_nothing_fits(self):
        assert RoundRobinSelector().select(AVAIL, cpus=1000) is None


class TestLeastUsed:
    def test_picks_most_free(self, rng):
        assert LeastUsedSelector(rng).select(AVAIL, cpus=1) == "b"

    def test_tie_break_random_among_best(self, rng):
        sel = LeastUsedSelector(rng)
        avail = {"x": 10.0, "y": 10.0, "z": 1.0}
        picks = {sel.select(avail, cpus=1) for _ in range(50)}
        assert picks == {"x", "y"}

    def test_none_when_nothing_fits(self, rng):
        assert LeastUsedSelector(rng).select(AVAIL, cpus=1000) is None


class TestLRU:
    def test_rotates_through_sites(self):
        sel = LeastRecentlyUsedSelector()
        picks = [sel.select(AVAIL, cpus=5) for _ in range(4)]
        # Never-used sites first (name order), then the oldest-used.
        assert picks == ["a", "b", "c", "a"]

    def test_respects_fit(self):
        sel = LeastRecentlyUsedSelector()
        assert sel.select(AVAIL, cpus=40) == "b"
        assert sel.select(AVAIL, cpus=40) == "b"


class TestFactory:
    def test_all_names(self, rng):
        for name in ("random", "round_robin", "least_used", "lru"):
            assert make_selector(name, rng) is not None

    def test_unknown_rejected(self, rng):
        with pytest.raises(ValueError):
            make_selector("best_fit", rng)

    def test_stochastic_needs_rng(self):
        with pytest.raises(ValueError):
            make_selector("random")
        assert make_selector("round_robin") is not None
