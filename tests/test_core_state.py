"""Tests for the staleness-aware grid state view."""

import pytest

from repro.core import DispatchRecord, GridStateView


def rec(origin="dp0", seq=1, site="s0", vo="vo0", cpus=2, time=10.0):
    return DispatchRecord(origin=origin, seq=seq, site=site, vo=vo,
                          cpus=cpus, time=time)


@pytest.fixture
def view():
    return GridStateView({"s0": 100, "s1": 50}, assumed_job_lifetime_s=600.0)


class TestConstruction:
    def test_initial_estimates_all_free(self, view):
        assert view.estimated_free("s0") == 100
        assert view.free_map() == {"s0": 100.0, "s1": 50.0}
        assert view.n_sites == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GridStateView({})


class TestRecords:
    def test_apply_decrements_free(self, view):
        view.apply_record(rec(cpus=8))
        assert view.estimated_free("s0") == 92

    def test_duplicate_ignored(self, view):
        assert view.apply_record(rec()) is True
        assert view.apply_record(rec()) is False
        assert view.estimated_busy("s0") == 2

    def test_same_seq_different_origin_both_apply(self, view):
        view.apply_record(rec(origin="dp0", seq=1))
        view.apply_record(rec(origin="dp1", seq=1))
        assert view.estimated_busy("s0") == 4

    def test_unknown_site_rejected(self, view):
        with pytest.raises(KeyError):
            view.apply_record(rec(site="ghost"))

    def test_busy_clamped_to_capacity(self, view):
        for i in range(100):
            view.apply_record(rec(seq=i, site="s1", cpus=10))
        assert view.estimated_busy("s1") == 50
        assert view.estimated_free("s1") == 0

    def test_vo_busy_tracked(self, view):
        view.apply_record(rec(seq=1, vo="atlas", cpus=4))
        view.apply_record(rec(seq=2, vo="atlas", cpus=2))
        view.apply_record(rec(seq=3, vo="cms", cpus=1))
        assert view.estimated_vo_busy("s0", "atlas") == 6
        assert view.estimated_vo_busy("s0", "cms") == 1
        assert view.estimated_vo_busy("s0", "lhcb") == 0

    def test_apply_records_counts_fresh(self, view):
        n = view.apply_records([rec(seq=1), rec(seq=2), rec(seq=1)])
        assert n == 2


class TestRefresh:
    def test_refresh_overrides_base(self, view):
        view.refresh_site("s0", busy_cpus=30.0, now=100.0)
        assert view.estimated_busy("s0") == 30.0

    def test_older_records_absorbed_by_refresh(self, view):
        view.apply_record(rec(seq=1, cpus=5, time=50.0))
        view.refresh_site("s0", busy_cpus=5.0, now=100.0)
        # The record predates the refresh: it is in the ground truth.
        assert view.estimated_busy("s0") == 5.0
        assert view.estimated_vo_busy("s0", "vo0") == 0.0

    def test_newer_records_survive_refresh(self, view):
        view.refresh_site("s0", busy_cpus=10.0, now=100.0)
        view.apply_record(rec(seq=1, cpus=5, time=150.0))
        assert view.estimated_busy("s0") == 15.0

    def test_record_older_than_base_not_applied(self, view):
        view.refresh_site("s0", busy_cpus=10.0, now=100.0)
        view.apply_record(rec(seq=1, cpus=5, time=50.0))
        assert view.estimated_busy("s0") == 10.0

    def test_refresh_all(self, view):
        view.refresh_all({"s0": 20.0, "s1": 10.0}, now=100.0)
        assert view.estimated_busy("s1") == 10.0

    def test_unknown_site_refresh_rejected(self, view):
        with pytest.raises(KeyError):
            view.refresh_site("ghost", 1.0, 0.0)


class TestExpiryAndPending:
    def test_expire_drops_past_lifetime(self, view):
        view.apply_record(rec(seq=1, time=10.0, cpus=4))
        view.apply_record(rec(seq=2, time=700.0, cpus=2))
        dropped = view.expire(now=800.0)  # lifetime 600 -> cutoff 200
        assert dropped == 1
        assert view.estimated_busy("s0") == 2
        assert view.n_records == 1

    def test_expired_key_forgotten(self, view):
        """After expiry, the dedup key is forgotten (bounded memory)."""
        view.apply_record(rec(seq=1, time=10.0))
        view.expire(now=1000.0)
        assert view.n_records == 0

    def test_query_with_now_expires_lazily(self, view):
        view.apply_record(rec(seq=1, time=10.0, cpus=4))
        assert view.estimated_busy("s0") == 4
        assert view.estimated_busy("s0", now=700.0) == 0
        assert view.free_map(now=700.0)["s0"] == 100.0

    def test_record_arriving_after_own_expiry_rejected(self, view):
        """A record relayed slower than the job lifetime is useless."""
        assert view.apply_record(rec(seq=1, time=10.0), now=700.0) is False
        assert view.n_records == 0

    def test_expiry_decrements_vo_busy(self, view):
        view.apply_record(rec(seq=1, time=10.0, vo="atlas", cpus=4))
        view.expire(now=800.0)
        assert view.estimated_vo_busy("s0", "atlas") == 0.0

    def test_pending_records_cutoff(self, view):
        view.apply_record(rec(seq=1, time=10.0))
        view.apply_record(rec(seq=2, time=90.0))
        pending = view.pending_records(newer_than=50.0)
        assert [r.seq for r in pending] == [2]

    def test_lifetime_validation(self):
        with pytest.raises(ValueError):
            GridStateView({"s": 1}, assumed_job_lifetime_s=0.0)
