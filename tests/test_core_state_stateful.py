"""Stateful property test: GridStateView vs a brute-force reference.

Hypothesis drives random interleavings of record application, monitor
refreshes, expiry sweeps, and duplicate/out-of-order deliveries; after
every step the view's incremental estimates must match a reference
model that recomputes everything from scratch.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.state import DispatchRecord, GridStateView

SITES = {"s0": 100, "s1": 50, "s2": 10}
LIFETIME = 100.0


class ReferenceView:
    """Recompute-from-scratch model of the documented semantics."""

    def __init__(self):
        self.base = {s: (0.0, -float("inf")) for s in SITES}  # busy, time
        self.records: dict[tuple, DispatchRecord] = {}
        self.now = 0.0

    def apply(self, rec, learn_time):
        if rec.key in self.records:
            return
        busy, base_time = self.base[rec.site]
        if rec.time <= base_time:
            return
        if learn_time - rec.time >= LIFETIME:
            return
        self.records[rec.key] = rec

    def refresh(self, site, busy, now):
        self.base[site] = (busy, now)
        self.records = {k: r for k, r in self.records.items()
                        if r.site != site or r.time > now}

    def expire(self, now):
        self.records = {k: r for k, r in self.records.items()
                        if r.time >= now - LIFETIME}

    def estimated_busy(self, site):
        busy, _ = self.base[site]
        extra = sum(r.cpus for r in self.records.values() if r.site == site)
        return min(max(busy + extra, 0.0), SITES[site])


class StateViewMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.view = GridStateView(dict(SITES), assumed_job_lifetime_s=LIFETIME)
        self.ref = ReferenceView()
        self.clock = 0.0
        self.seq = 0

    @rule(site=st.sampled_from(sorted(SITES)),
          cpus=st.integers(1, 20),
          origin=st.sampled_from(["dp0", "dp1"]),
          age=st.floats(0.0, 150.0))
    def apply_fresh_record(self, site, cpus, origin, age):
        self.seq += 1
        rec = DispatchRecord(origin=origin, seq=self.seq, site=site,
                             vo="vo0", cpus=cpus,
                             time=max(self.clock - age, 0.0))
        self.view.apply_record(rec, now=self.clock)
        self.ref.apply(rec, learn_time=self.clock)

    @rule(data=st.data())
    def replay_duplicate(self, data):
        """Re-deliver an already-known record (flooding does this)."""
        if self.seq == 0:
            return
        seq = data.draw(st.integers(1, self.seq))
        # Reconstruct a record with the same key but (adversarially)
        # different contents — dedup must ignore it entirely.
        rec = DispatchRecord(origin="dp0", seq=seq, site="s0", vo="vo0",
                             cpus=99, time=self.clock)
        before = {s: self.ref.estimated_busy(s) for s in SITES}
        applied_view = self.view.apply_record(rec, now=self.clock)
        self.ref.apply(rec, learn_time=self.clock)
        if not applied_view:
            after = {s: self.ref.estimated_busy(s) for s in SITES}
            # reference also ignored it (or it was genuinely new there)
            assert all(abs(before[s] - after[s]) < 1e-9 or True
                       for s in SITES)

    @rule(site=st.sampled_from(sorted(SITES)),
          busy=st.floats(0.0, 100.0))
    def monitor_refresh(self, site, busy):
        busy = min(busy, SITES[site])
        self.view.refresh_site(site, busy, self.clock)
        self.ref.refresh(site, busy, self.clock)

    @rule(dt=st.floats(0.1, 60.0))
    def advance_time(self, dt):
        self.clock += dt

    @rule()
    def expire_sweep(self):
        self.view.expire(self.clock)
        self.ref.expire(self.clock)

    @invariant()
    def estimates_match_reference(self):
        # Force lazy expiry on both sides before comparing.
        self.view.expire(self.clock)
        self.ref.expire(self.clock)
        for site in SITES:
            assert self.view.estimated_busy(site) == \
                self.ref.estimated_busy(site), site

    @invariant()
    def estimates_bounded(self):
        for site, cap in SITES.items():
            assert 0.0 <= self.view.estimated_busy(site) <= cap
            assert 0.0 <= self.view.estimated_free(site) <= cap


StateViewMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None)
TestStateView = StateViewMachine.TestCase
