"""Tests for the DiPerF harness, including the Fig 1 micro-benchmark shape."""

import numpy as np
import pytest

from repro.diperf import DiPerfResult, RampSchedule, run_instance_creation_test
from repro.grid import GridBuilder
from repro.net import ConstantLatency, GT3_PROFILE, Network
from repro.core import DecisionPoint
from repro.sim import RngRegistry, Simulator
from repro.workloads import TraceRecorder


class TestRampSchedule:
    def test_even_spacing(self):
        ramp = RampSchedule(n_clients=5, span_s=40.0)
        assert [ramp.join_time(i) for i in range(5)] == [0.0, 10.0, 20.0, 30.0, 40.0]

    def test_single_client(self):
        assert RampSchedule(1, span_s=100.0, start_s=5.0).join_time(0) == 5.0

    def test_offsets_mapping(self):
        ramp = RampSchedule(n_clients=2, span_s=10.0)
        assert ramp.offsets(["a", "b"]) == {"a": 0.0, "b": 10.0}

    def test_validation(self):
        with pytest.raises(ValueError):
            RampSchedule(0, span_s=1.0)
        with pytest.raises(IndexError):
            RampSchedule(2, span_s=1.0).join_time(5)
        with pytest.raises(ValueError):
            RampSchedule(2, span_s=1.0).offsets(["only-one"])


def _run_fig1_style(n_clients, duration=300.0):
    sim = Simulator()
    rng = RngRegistry(42)
    net = Network(sim, ConstantLatency(0.06))
    grid = GridBuilder(sim, rng.stream("grid")).uniform(n_sites=3,
                                                        cpus_per_site=8)
    dp = DecisionPoint(sim, net, "svc", grid, GT3_PROFILE, rng.stream("dp"),
                       monitor_interval_s=600.0)
    dp.start(neighbors=[])
    trace, testers = run_instance_creation_test(
        sim, net, "svc", GT3_PROFILE, rng, n_clients=n_clients,
        ramp_span_s=duration * 0.5, duration_s=duration)
    sim.run(until=duration)
    result = DiPerfResult(
        name="fig1", trace=trace, t_start=0.0, t_end=duration,
        client_starts=np.array([t.start_at for t in testers]),
        client_ends=np.array([duration] * len(testers)),
        window_s=30.0)
    return result


class TestInstanceCreationTester:
    def test_unsaturated_throughput_tracks_clients(self):
        """Few clients: each completes ~1/(overhead+svc+rtt) ops/s."""
        result = _run_fig1_style(n_clients=4)
        # Unloaded op ~ 1.3 overhead + 0.13 svc + 0.12 rtt ~ 1.6 s
        assert 1.5 < result.mean_throughput() < 3.5

    def test_saturation_plateau_at_capacity(self):
        """Many clients: throughput caps near the container capacity."""
        result = _run_fig1_style(n_clients=60)
        cap = GT3_PROFILE.instance_capacity_qps
        _, rates = result.throughput_series()
        # Peak window throughput should sit near capacity, not near the
        # offered load (60 clients could offer ~40 q/s).
        assert rates.max() == pytest.approx(cap, rel=0.25)

    def test_response_grows_with_load(self):
        light = _run_fig1_style(n_clients=4)
        heavy = _run_fig1_style(n_clients=60)
        assert (heavy.response_stats().maximum
                > 3 * light.response_stats().average)

    def test_tester_validation(self):
        sim = Simulator()
        net = Network(sim, ConstantLatency(0.01))
        from repro.diperf.tester import InstanceCreationTester
        with pytest.raises(ValueError):
            InstanceCreationTester(sim, net, "t", "svc", GT3_PROFILE,
                                   RngRegistry(0).stream("x"),
                                   TraceRecorder(), start_at=10.0, end_at=5.0)


class TestDiPerfResult:
    def test_series_shapes_consistent(self):
        result = _run_fig1_style(n_clients=8, duration=120.0)
        t1, load = result.load_series()
        t2, resp = result.response_series()
        t3, thr = result.throughput_series()
        assert len(t1) == len(t2) == len(t3) == 4  # 120 s / 30 s windows
        assert load.max() == 8

    def test_summary_renders(self):
        result = _run_fig1_style(n_clients=4, duration=120.0)
        text = result.summary()
        assert "Response Time" in text and "Throughput" in text
        assert "peak_load=4" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            DiPerfResult("x", TraceRecorder(), 10.0, 5.0,
                         np.array([]), np.array([]))
