"""Tests for the Euryale planner stack (replica, Condor-G, planner, DagMan)."""

import pytest

from repro.core import DecisionPoint, LeastUsedSelector
from repro.euryale import (
    CondorGSubmitter,
    DagMan,
    DagNode,
    EuryalePlanner,
    FileSpec,
    PlannerJob,
    ReplicaCatalog,
)
from repro.grid import GridBuilder, Job
from repro.net import ConstantLatency, GT3_PROFILE, Network
from repro.sim import RngRegistry, Simulator


@pytest.fixture
def env():
    sim = Simulator()
    rng = RngRegistry(1)
    net = Network(sim, ConstantLatency(0.05))
    grid = GridBuilder(sim, rng.stream("grid")).uniform(n_sites=3,
                                                        cpus_per_site=8)
    return sim, rng, net, grid


def make_planner(env, with_dp=True, max_retries=3):
    sim, rng, net, grid = env
    dp = None
    if with_dp:
        dp = DecisionPoint(sim, net, "dp0", grid, GT3_PROFILE,
                           rng.stream("dp"), monitor_interval_s=600.0)
        dp.start(neighbors=[])
    planner = EuryalePlanner(
        sim, net, grid,
        submitter=CondorGSubmitter(sim, net, grid),
        catalog=ReplicaCatalog(),
        selector=LeastUsedSelector(rng.stream("sel")),
        rng=rng.stream("fallback"),
        decision_point="dp0" if with_dp else None,
        max_retries=max_retries)
    return planner, dp


def make_job(duration=50.0, cpus=1):
    return Job(vo="vo0", group="g0", user="u0", cpus=cpus, duration_s=duration)


class TestReplicaCatalog:
    def test_register_and_lookup(self):
        cat = ReplicaCatalog()
        cat.register("f1", "siteA")
        cat.register("f1", "siteB")
        assert cat.locations("f1") == {"siteA", "siteB"}
        assert cat.has_replica("f1", "siteA")
        assert not cat.has_replica("f1", "siteC")
        assert "f1" in cat and len(cat) == 1

    def test_unregister(self):
        cat = ReplicaCatalog()
        cat.register("f1", "siteA")
        cat.unregister("f1", "siteA")
        assert "f1" not in cat
        cat.unregister("f1", "siteA")  # idempotent

    def test_popularity(self):
        cat = ReplicaCatalog()
        for _ in range(3):
            cat.touch("hot")
        cat.touch("cold")
        assert cat.popularity("hot") == 3
        assert cat.most_popular(1) == [("hot", 3)]

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicaCatalog().register("", "site")


class TestCondorG:
    def test_submit_and_complete(self, env):
        sim, rng, net, grid = env
        sub = CondorGSubmitter(sim, net, grid)
        job = make_job(duration=30.0)
        done = sub.submit(job, grid.site_names[0])
        sim.run()
        assert done.ok and done.value is job
        assert job.completed_at == pytest.approx(30.05, abs=0.01)
        assert sub.in_flight == 0

    def test_failure_fails_event(self, env):
        sim, rng, net, grid = env
        sub = CondorGSubmitter(sim, net, grid)
        job = make_job(cpus=999)  # cannot fit anywhere
        done = sub.submit(job, grid.site_names[0])
        sim.run()
        assert done.ok is False

    def test_unknown_site_rejected(self, env):
        sim, rng, net, grid = env
        sub = CondorGSubmitter(sim, net, grid)
        with pytest.raises(KeyError):
            sub.submit(make_job(), "nowhere")


class TestEuryalePlanner:
    def test_end_to_end_with_gruber(self, env):
        sim, rng, net, grid = env
        planner, dp = make_planner(env)
        pj = PlannerJob(job=make_job(duration=40.0),
                        inputs=[FileSpec("in1", size_mb=8.0)],
                        outputs=[FileSpec("out1", size_mb=4.0)])
        proc = sim.process(planner.run_job(pj))
        sim.run(until=500.0)
        assert proc.ok and proc.value is pj.job
        assert pj.job.completed_at is not None
        # Input staged and registered at the execution site.
        assert planner.catalog.has_replica("in1", pj.job.site)
        # Output registered at the collection area.
        assert planner.catalog.has_replica("out1", "collection-area")
        assert planner.catalog.popularity("in1") == 1

    def test_input_reuse_skips_transfer(self, env):
        sim, rng, net, grid = env
        planner, _ = make_planner(env, with_dp=False)
        site = grid.site_names[0]
        planner.catalog.register("cached", site)
        # Pin the fallback so the job lands on the cached site.
        planner.fallback.select_any = lambda sites: site
        pj = PlannerJob(job=make_job(duration=10.0),
                        inputs=[FileSpec("cached", size_mb=4000.0)])
        proc = sim.process(planner.run_job(pj))
        sim.run(until=100.0)
        # A 4 GB transfer would take 1000 s; reuse means we finish fast.
        assert proc.ok

    def test_replanning_after_failure(self, env):
        sim, rng, net, grid = env
        planner, dp = make_planner(env)
        job = make_job(duration=1000.0)
        pj = PlannerJob(job=job)
        proc = sim.process(planner.run_job(pj))
        # Let it get placed and started, then kill it once.
        sim.run(until=60.0)
        assert job.site is not None
        grid.site(job.site).fail_running_job(job.jid)
        sim.run(until=2000.0)
        assert planner.replans == 1
        assert job.replans == 1
        sim.run(until=4000.0)  # bounded: the DP's periodic timers never stop
        assert proc.ok and job.completed_at is not None

    def test_retries_exhausted(self, env):
        sim, rng, net, grid = env
        planner, _ = make_planner(env, with_dp=False, max_retries=0)
        job = make_job(cpus=999)  # always fails at any site
        proc = sim.process(planner.run_job(PlannerJob(job=job)))
        sim.run(until=100.0)
        assert proc.ok is False
        assert planner.abandoned == [job]

    def test_without_dp_uses_fallback(self, env):
        sim, rng, net, grid = env
        planner, _ = make_planner(env, with_dp=False)
        proc = sim.process(planner.run_job(PlannerJob(job=make_job(10.0))))
        sim.run()
        assert proc.ok


class TestDagMan:
    def _planner_job(self, duration=10.0):
        return PlannerJob(job=make_job(duration=duration))

    def test_linear_chain_order(self, env):
        sim, rng, net, grid = env
        planner, _ = make_planner(env, with_dp=False)
        dag = DagMan(sim, planner)
        dag.add_node(DagNode("a", self._planner_job()))
        dag.add_node(DagNode("b", self._planner_job(), parents=["a"]))
        dag.add_node(DagNode("c", self._planner_job(), parents=["b"]))
        done = dag.run()
        sim.run()
        assert done.value == {"done": 3, "failed": 0}
        jobs = {n: dag.nodes[n].planner_job.job for n in "abc"}
        assert jobs["a"].completed_at <= jobs["b"].started_at
        assert jobs["b"].completed_at <= jobs["c"].started_at

    def test_diamond_parallelism(self, env):
        sim, rng, net, grid = env
        planner, _ = make_planner(env, with_dp=False)
        dag = DagMan(sim, planner)
        dag.add_node(DagNode("root", self._planner_job()))
        dag.add_node(DagNode("l", self._planner_job(30.0), parents=["root"]))
        dag.add_node(DagNode("r", self._planner_job(30.0), parents=["root"]))
        dag.add_node(DagNode("sink", self._planner_job(), parents=["l", "r"]))
        dag.run()
        sim.run()
        jobs = {n: dag.nodes[n].planner_job.job for n in ("l", "r")}
        # Parallel branches overlap in time.
        assert jobs["l"].started_at < jobs["r"].completed_at
        assert jobs["r"].started_at < jobs["l"].completed_at
        assert dag.states()["sink"] == "done"

    def test_failure_cascades_to_descendants(self, env):
        sim, rng, net, grid = env
        planner, _ = make_planner(env, with_dp=False, max_retries=0)
        dag = DagMan(sim, planner)
        bad = PlannerJob(job=make_job(cpus=999))
        dag.add_node(DagNode("bad", bad))
        dag.add_node(DagNode("child", self._planner_job(), parents=["bad"]))
        dag.add_node(DagNode("ok", self._planner_job()))
        done = dag.run()
        sim.run()
        assert done.value == {"done": 1, "failed": 2}
        assert dag.states() == {"bad": "failed", "child": "failed",
                                "ok": "done"}

    def test_cycle_rejected(self, env):
        sim, rng, net, grid = env
        planner, _ = make_planner(env, with_dp=False)
        dag = DagMan(sim, planner)
        dag.add_node(DagNode("a", self._planner_job(), parents=["b"]))
        dag.add_node(DagNode("b", self._planner_job(), parents=["a"]))
        with pytest.raises(ValueError, match="cycle"):
            dag.run()

    def test_unknown_parent_rejected(self, env):
        sim, rng, net, grid = env
        planner, _ = make_planner(env, with_dp=False)
        dag = DagMan(sim, planner)
        dag.add_node(DagNode("a", self._planner_job(), parents=["ghost"]))
        with pytest.raises(ValueError, match="unknown"):
            dag.run()

    def test_duplicate_node_rejected(self, env):
        sim, rng, net, grid = env
        planner, _ = make_planner(env, with_dp=False)
        dag = DagMan(sim, planner)
        dag.add_node(DagNode("a", self._planner_job()))
        with pytest.raises(ValueError, match="duplicate"):
            dag.add_node(DagNode("a", self._planner_job()))

    def test_empty_dag(self, env):
        sim, rng, net, grid = env
        planner, _ = make_planner(env, with_dp=False)
        done = DagMan(sim, planner).run()
        assert done.value == {"done": 0, "failed": 0}
