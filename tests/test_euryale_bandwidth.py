"""Tests for Euryale staging over modeled bandwidth pools."""

import pytest

from repro.core import LeastUsedSelector
from repro.euryale import (
    CondorGSubmitter,
    EuryalePlanner,
    FileSpec,
    PlannerJob,
    ReplicaCatalog,
)
from repro.grid import GridBuilder, Job
from repro.net import ConstantLatency, Network
from repro.net.bandwidth import BandwidthPool
from repro.sim import RngRegistry, Simulator
from repro.usla import PolicyEngine, parse_policy


def make_env(policy_text=None, capacity_mb_s=10.0):
    sim = Simulator()
    rng = RngRegistry(6)
    net = Network(sim, ConstantLatency(0.01))
    grid = GridBuilder(sim, rng.stream("grid")).uniform(n_sites=1,
                                                        cpus_per_site=16)
    site = grid.site_names[0]
    policy = (PolicyEngine(parse_policy(policy_text.format(site=site)))
              if policy_text else None)
    pools = {site: BandwidthPool(sim, site, capacity_mb_s, policy=policy)}
    planner = EuryalePlanner(
        sim, net, grid,
        submitter=CondorGSubmitter(sim, net, grid),
        catalog=ReplicaCatalog(),
        selector=LeastUsedSelector(rng.stream("sel")),
        rng=rng.stream("fb"), bandwidth=pools)
    return sim, planner, pools, site


def make_pj(vo="atlas", in_mb=100.0, duration=10.0):
    return PlannerJob(job=Job(vo=vo, group=f"{vo}-g", user=f"{vo}-u",
                              duration_s=duration),
                      inputs=[FileSpec(f"in-{id(object())}", size_mb=in_mb)])


class TestBandwidthStaging:
    def test_transfer_time_from_pool_rate(self):
        sim, planner, pools, site = make_env(capacity_mb_s=10.0)
        pj = make_pj(in_mb=100.0, duration=10.0)
        proc = sim.process(planner.run_job(pj))
        sim.run()
        assert proc.ok
        # 100 MB at 10 MB/s = 10 s staging + ~10 s run.
        assert pj.job.started_at == pytest.approx(10.0, abs=0.5)

    def test_concurrent_staging_contends(self):
        sim, planner, pools, site = make_env(capacity_mb_s=10.0)
        pjs = [make_pj(in_mb=100.0) for _ in range(2)]
        procs = [sim.process(planner.run_job(pj)) for pj in pjs]
        sim.run()
        assert all(p.ok for p in procs)
        # Two 100 MB transfers share the link: both staged at t=20.
        starts = sorted(pj.job.started_at for pj in pjs)
        assert starts[0] == pytest.approx(20.0, abs=1.0)

    def test_network_usla_delays_capped_vo(self):
        sim, planner, pools, site = make_env(
            policy_text="network|{site}:atlas=50%+", capacity_mb_s=10.0)
        pjs = [make_pj(vo="atlas", in_mb=50.0) for _ in range(3)]
        procs = [sim.process(planner.run_job(pj)) for pj in pjs]
        sim.run()
        assert all(p.ok for p in procs)
        assert pools[site].denials >= 1  # third transfer had to wait
        # All jobs still completed (retry loop).
        assert all(pj.job.completed_at is not None for pj in pjs)

    def test_records_kept_for_verification(self):
        sim, planner, pools, site = make_env()
        pj = make_pj(in_mb=40.0)
        sim.process(planner.run_job(pj))
        sim.run()
        assert pools[site].vo_mb_transferred()["atlas"] == pytest.approx(40.0)
