"""Tests for data-aware placement in the Euryale planner."""

import pytest

from repro.core import DecisionPoint, LeastUsedSelector
from repro.euryale import (
    CondorGSubmitter,
    EuryalePlanner,
    FileSpec,
    PlannerJob,
    ReplicaCatalog,
)
from repro.grid import GridBuilder, Job
from repro.net import ConstantLatency, Network
from repro.sim import RngRegistry, Simulator

from tests.test_core_client import FAST_PROFILE


def make_env(with_dp=True, data_aware=True):
    sim = Simulator()
    rng = RngRegistry(17)
    net = Network(sim, ConstantLatency(0.02))
    grid = GridBuilder(sim, rng.stream("grid")).uniform(n_sites=5,
                                                        cpus_per_site=16)
    dp_id = None
    if with_dp:
        dp = DecisionPoint(sim, net, "dp0", grid, FAST_PROFILE,
                           rng.stream("dp"), monitor_interval_s=600.0)
        dp.start(neighbors=[])
        dp_id = "dp0"
    planner = EuryalePlanner(
        sim, net, grid,
        submitter=CondorGSubmitter(sim, net, grid),
        catalog=ReplicaCatalog(),
        selector=LeastUsedSelector(rng.stream("sel")),
        rng=rng.stream("fb"), decision_point=dp_id,
        data_aware=data_aware)
    return sim, planner, grid


def pj(lfn="data", size_mb=400.0, duration=20.0):
    return PlannerJob(job=Job(vo="atlas", group="g", user="u",
                              duration_s=duration),
                      inputs=[FileSpec(lfn, size_mb=size_mb)])


class TestDataAwarePlacement:
    def test_job_follows_its_replica(self):
        sim, planner, grid = make_env()
        home = grid.site_names[3]
        planner.catalog.register("data", home)
        job = pj()
        proc = sim.process(planner.run_job(job))
        sim.run(until=500.0)
        assert proc.ok
        assert job.job.site == home
        assert planner.data_aware_hits == 1

    def test_no_replica_falls_back_to_selector(self):
        sim, planner, grid = make_env()
        job = pj(lfn="fresh-data")
        proc = sim.process(planner.run_job(job))
        sim.run(until=500.0)
        assert proc.ok
        assert planner.data_aware_hits == 0

    def test_full_replica_site_skipped(self):
        sim, planner, grid = make_env()
        home = grid.site_names[0]
        planner.catalog.register("data", home)
        # Saturate the replica site's CPUs and let the decision point's
        # monitor observe it (otherwise its view is — correctly — stale).
        grid.site(home).submit(Job(vo="x", group="g", user="u",
                                   cpus=16, duration_s=10_000.0))
        planner.network.endpoint("dp0").monitor.sweep()
        job = pj()
        proc = sim.process(planner.run_job(job))
        sim.run(until=500.0)
        assert proc.ok
        assert job.job.site != home  # capacity beats locality

    def test_richest_replica_site_wins(self):
        sim, planner, grid = make_env()
        a, b = grid.site_names[0], grid.site_names[1]
        planner.catalog.register("big", a)
        planner.catalog.register("small", b)
        job = PlannerJob(job=Job(vo="atlas", group="g", user="u",
                                 duration_s=20.0),
                         inputs=[FileSpec("big", 1000.0),
                                 FileSpec("small", 10.0)])
        proc = sim.process(planner.run_job(job))
        sim.run(until=1000.0)
        assert proc.ok
        assert job.job.site == a

    def test_second_run_reuses_staged_data(self):
        """A rerun over the same inputs avoids the transfer entirely."""
        sim, planner, grid = make_env()
        first = pj(size_mb=2000.0)  # 500 s staging at 4 MB/s
        p1 = sim.process(planner.run_job(first))
        sim.run(until=2000.0)
        assert p1.ok
        t0 = sim.now
        second = pj(size_mb=2000.0, duration=20.0)
        p2 = sim.process(planner.run_job(second))
        sim.run(until=t0 + 1500.0)
        assert p2.ok
        assert second.job.site == first.job.site
        # No re-staging: finished in well under the 500 s transfer time.
        assert second.job.completed_at - t0 < 100.0

    def test_disabled_flag_ignores_replicas(self):
        sim, planner, grid = make_env(data_aware=False)
        planner.catalog.register("data", grid.site_names[4])
        proc = sim.process(planner.run_job(pj()))
        sim.run(until=500.0)
        assert proc.ok
        assert planner.data_aware_hits == 0

    def test_data_aware_without_dp(self):
        sim, planner, grid = make_env(with_dp=False)
        home = grid.site_names[2]
        planner.catalog.register("data", home)
        job = pj()
        proc = sim.process(planner.run_job(job))
        sim.run(until=500.0)
        assert proc.ok and job.job.site == home
