"""Smoke tests: every example script compiles; the quick ones run."""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

ALL_SCRIPTS = sorted(p.name for p in EXAMPLES.glob("*.py"))
QUICK_SCRIPTS = ["quickstart.py", "euryale_workflow.py",
                 "usla_negotiation.py"]


class TestExamples:
    def test_inventory(self):
        """The README's example table stays in sync with the directory."""
        assert set(ALL_SCRIPTS) == {
            "quickstart.py", "fair_share_brokering.py",
            "scalability_study.py", "dynamic_reconfiguration.py",
            "euryale_workflow.py", "usla_negotiation.py"}

    @pytest.mark.parametrize("script", ALL_SCRIPTS)
    def test_compiles(self, script):
        py_compile.compile(str(EXAMPLES / script), doraise=True)

    @pytest.mark.parametrize("script", QUICK_SCRIPTS)
    def test_quick_examples_run(self, script):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / script)],
            capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert proc.stdout.strip()
