"""Integration tests: full experiment runs on the smoke configuration."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    canonical_gt3,
    canonical_gt4,
    run_experiment,
    run_fig1_service_creation,
    smoke_config,
)
from repro.experiments.figures import (
    accuracy_vs_interval_table,
    run_accuracy_sweep,
    run_scalability_sweep,
    table_overall_performance,
)


@pytest.fixture(scope="module")
def smoke_result():
    return run_experiment(smoke_config())


class TestConfigs:
    def test_canonical_presets(self):
        gt3 = canonical_gt3(3)
        assert gt3.decision_points == 3 and gt3.profile.name == "GT3"
        gt4 = canonical_gt4(10)
        assert gt4.profile.name == "GT4"
        assert gt4.n_clients < gt3.n_clients

    def test_with_override(self):
        cfg = smoke_config().with_(decision_points=5)
        assert cfg.decision_points == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(decision_points=0)
        with pytest.raises(ValueError):
            ExperimentConfig(ramp_fraction=0.0)

    def test_ramp_span(self):
        cfg = ExperimentConfig(duration_s=1000.0, ramp_fraction=0.4)
        assert cfg.ramp_span_s == 400.0


class TestRunExperiment:
    def test_jobs_flow_end_to_end(self, smoke_result):
        assert smoke_result.n_jobs > 50
        fb = smoke_result.client_fallbacks()
        assert fb["handled"] > 0

    def test_categories_partition_requests(self, smoke_result):
        n_all = smoke_result.n_requests("all")
        assert (smoke_result.n_requests("handled")
                + smoke_result.n_requests("not_handled")) == n_all

    def test_metric_ranges(self, smoke_result):
        assert 0.0 <= smoke_result.utilization("all") <= 1.0
        assert 0.0 <= smoke_result.accuracy("handled") <= 1.0
        assert smoke_result.qtime("all") >= 0.0

    def test_diperf_series(self, smoke_result):
        d = smoke_result.diperf(window_s=30.0)
        _, load = d.load_series()
        assert load.max() == smoke_result.config.n_clients
        assert d.n_queries > 0

    def test_dp_ops_counted(self, smoke_result):
        ops = smoke_result.dp_ops()
        assert sum(ops.values()) > 0

    def test_deterministic_given_seed(self):
        cfg = smoke_config(duration_s=120.0)
        r1 = run_experiment(cfg)
        r2 = run_experiment(cfg)
        assert r1.n_jobs == r2.n_jobs
        q1 = r1.trace.query_arrays()["response_s"]
        q2 = r2.trace.query_arrays()["response_s"]
        assert np.allclose(q1, q2, equal_nan=True)

    def test_seed_changes_outcome(self):
        r1 = run_experiment(smoke_config(duration_s=120.0))
        r2 = run_experiment(smoke_config(duration_s=120.0, seed=99))
        q1 = r1.trace.query_arrays()["response_s"]
        q2 = r2.trace.query_arrays()["response_s"]
        assert len(q1) != len(q2) or not np.allclose(q1, q2, equal_nan=True)

    def test_table_row_fields(self, smoke_result):
        row = smoke_result.table_row("handled")
        assert set(row) == {"category", "pct_req", "n_req", "qtime_s",
                            "norm_qtime", "util_pct", "accuracy_pct"}
        assert np.isnan(smoke_result.table_row("not_handled")["accuracy_pct"])

    def test_summary_renders(self, smoke_result):
        text = smoke_result.summary()
        assert "requests=" in text and "accuracy" in text

    def test_deployment_hook_invoked(self):
        calls = []

        def hook(**kw):
            calls.append(set(kw))

        run_experiment(smoke_config(duration_s=60.0), deployment_hook=hook)
        assert calls and {"sim", "deployment", "network", "grid",
                          "rng"} <= calls[0]


class TestMoreDecisionPointsHelp:
    """The paper's core claim at smoke scale: k=3 beats k=1 under load."""

    @pytest.fixture(scope="class")
    def results(self):
        base = smoke_config(n_clients=48, duration_s=600.0)
        return run_scalability_sweep(base, dp_counts=(1, 3))

    def test_throughput_improves(self, results):
        t1 = results[1].diperf().mean_throughput()
        t3 = results[3].diperf().mean_throughput()
        assert t3 > 1.5 * t1

    def test_response_improves(self, results):
        r1 = results[1].diperf().response_stats().average
        r3 = results[3].diperf().response_stats().average
        assert r3 < r1

    def test_handled_fraction_improves(self, results):
        h1 = results[1].n_requests("handled") / max(results[1].n_jobs, 1)
        h3 = results[3].n_requests("handled") / max(results[3].n_jobs, 1)
        assert h3 > h1

    def test_table_renders(self, results):
        text = table_overall_performance(results)
        assert "Handled" in text and "All req" in text


class TestFig1:
    def test_shape(self):
        result = run_fig1_service_creation(n_clients=40, duration_s=400.0)
        # Saturation: peak windowed throughput near container capacity.
        from repro.net import GT3_PROFILE
        _, rates = result.throughput_series()
        assert rates.max() == pytest.approx(GT3_PROFILE.instance_capacity_qps,
                                            rel=0.3)
        # Response grows under load.
        stats = result.response_stats()
        assert stats.maximum > 2 * stats.minimum


class TestAccuracySweep:
    def test_sweep_runs_and_renders(self):
        base = smoke_config(n_clients=12, duration_s=300.0)
        results = run_accuracy_sweep(base, intervals_min=(0.5, 5.0),
                                     decision_points=2)
        assert set(results) == {0.5, 5.0}
        text = accuracy_vs_interval_table(results)
        assert "0.5 min" in text
