"""End-to-end chaos runs: determinism, zero kernel leaks, graceful
degradation, and the resilient stack beating the timeout-only baseline."""

import json

import pytest

from repro.experiments import run_experiment
from repro.experiments.configs import chaos_smoke_config
from repro.faults.scenarios import scenario_names


def fingerprint(result):
    """Everything a chaos run produced that determinism must pin."""
    return json.dumps({
        "fallbacks": result.client_fallbacks(),
        "resilience": result.resilience_stats(),
        "qtime": result.qtime("all"),
        "util": result.utilization("all"),
        "messages": result.network.stats.messages,
        "kb": result.network.stats.kb,
        "dropped": result.network.stats.dropped,
    }, sort_keys=True)


class TestChaosRuns:
    @pytest.mark.parametrize("scenario", scenario_names())
    def test_no_kernel_leaks_and_nonzero_throughput(self, scenario):
        result = run_experiment(chaos_smoke_config(
            scenario=scenario, resilient=True, duration_s=400.0))
        m = result.sim.metrics
        assert m.counter_value("kernel.unhandled_failures") == 0
        assert m.counter_value("kernel.periodic_errors") == 0
        assert result.resilience_stats()["faults_injected"] >= 1
        # Graceful degradation: the job stream never stalls — every
        # dispatched job got a placement, brokered or fallback.
        fb = result.client_fallbacks()
        assert fb["handled"] > 0
        assert fb["handled"] + fb["timeout"] == result.n_jobs > 0

    def test_baseline_variant_also_clean(self):
        result = run_experiment(chaos_smoke_config(
            scenario="dp_crash_restart", resilient=False, duration_s=400.0))
        m = result.sim.metrics
        assert m.counter_value("kernel.unhandled_failures") == 0
        assert result.client_fallbacks()["handled"] > 0
        # No policy machinery in the baseline.
        stats = result.resilience_stats()
        assert stats["retries"] == 0 and stats["failovers"] == 0

    @pytest.mark.parametrize("scenario", ["partition2", "flaky_dp"])
    def test_identical_seed_and_schedule_reproduce(self, scenario):
        # flaky_dp exercises the rng-consuming fault path (loss +
        # jitter draws), which is where a GC-timing nondeterminism
        # once hid; fresh configs per run so nothing is shared.
        a = run_experiment(chaos_smoke_config(
            scenario=scenario, resilient=True, duration_s=400.0))
        b = run_experiment(chaos_smoke_config(
            scenario=scenario, resilient=True, duration_s=400.0))
        assert fingerprint(a) == fingerprint(b)

    @pytest.mark.parametrize("scenario",
                             ["dp_crash_restart", "partition2", "flaky_dp"])
    def test_resilient_recovers_more_than_baseline(self, scenario):
        baseline = run_experiment(chaos_smoke_config(
            scenario=scenario, resilient=False))
        resilient = run_experiment(chaos_smoke_config(
            scenario=scenario, resilient=True))
        assert (resilient.client_fallbacks()["handled"]
                > baseline.client_fallbacks()["handled"])
        # The gain comes from the policy stack actually acting.
        stats = resilient.resilience_stats()
        assert stats["retries"] > 0
        assert stats["dp_crashes"] >= (1 if "crash" in scenario else 0)
