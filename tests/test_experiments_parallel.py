"""Tests for parallel sweep execution."""

import numpy as np
import pytest

from repro.experiments import smoke_config, run_experiment
from repro.experiments.parallel import RunSummary, run_parallel, summarize
from repro.grubsim import DPPerformanceModel, GrubSim
from repro.net import GT3_PROFILE


@pytest.fixture(scope="module")
def configs():
    base = smoke_config(n_clients=8, duration_s=200.0)
    return [base.with_(decision_points=k, name=f"par-{k}dp")
            for k in (1, 2, 3)]


class TestSummarize:
    def test_summary_matches_result(self, configs):
        result = run_experiment(configs[0])
        s = summarize(result)
        assert s.n_jobs == result.n_jobs
        assert s.peak_throughput == \
            result.diperf().throughput_stats().peak
        assert s.accuracy("handled") == pytest.approx(
            result.accuracy("handled"), abs=0.001)
        assert s.fallbacks == result.client_fallbacks()

    def test_trace_roundtrip_feeds_grubsim(self, configs):
        result = run_experiment(configs[0])
        s = summarize(result)
        trace = s.to_trace()
        assert trace.n_queries == result.trace.n_queries
        sized = GrubSim(DPPerformanceModel.from_profile(GT3_PROFILE)).replay(
            trace, initial_dps=1)
        assert sized.final_dps >= 1

    def test_summary_is_picklable(self, configs):
        import pickle
        s = summarize(run_experiment(configs[0]))
        restored = pickle.loads(pickle.dumps(s))
        assert isinstance(restored, RunSummary)
        assert restored.n_jobs == s.n_jobs


class TestRunParallel:
    def test_empty(self):
        assert run_parallel([]) == []

    def test_serial_path(self, configs):
        out = run_parallel(configs[:1], max_workers=1)
        assert len(out) == 1 and out[0].config.name == "par-1dp"

    def test_parallel_matches_serial(self, configs):
        serial = [summarize(run_experiment(c)) for c in configs]
        parallel = run_parallel(configs, max_workers=2)
        assert [s.config.name for s in parallel] == \
            [s.config.name for s in serial]
        for s, p in zip(serial, parallel):
            # Deterministic simulations: identical outcomes either way.
            assert p.n_jobs == s.n_jobs
            assert p.peak_throughput == pytest.approx(s.peak_throughput)
            assert np.allclose(p.throughput_series[1],
                               s.throughput_series[1])

    def test_results_in_input_order(self, configs):
        out = run_parallel(list(reversed(configs)), max_workers=3)
        assert [s.config.name for s in out] == \
            ["par-3dp", "par-2dp", "par-1dp"]


class TestSummaryDigest:
    def test_digest_is_deterministic(self, configs):
        from repro.experiments.parallel import summary_digest
        a = summary_digest(summarize(run_experiment(configs[0])))
        b = summary_digest(summarize(run_experiment(configs[0])))
        assert a == b and len(a) == 8

    def test_digest_separates_configs(self, configs):
        from repro.experiments.parallel import summary_digest
        digests = [summary_digest(s) for s in
                   run_parallel(configs, max_workers=2)]
        assert len(set(digests)) == len(digests)

    def test_worker_count_does_not_change_digests(self, configs):
        # The `digruber diff --pair workers` claim in unit form.
        from repro.experiments.parallel import summary_digest
        one = [summary_digest(s) for s in
               run_parallel(configs, max_workers=1)]
        four = [summary_digest(s) for s in
                run_parallel(configs, max_workers=4)]
        assert one == four
