"""Tests for parallel sweep execution."""

import numpy as np
import pytest

from repro.experiments import smoke_config, run_experiment
from repro.experiments.parallel import RunSummary, run_parallel, summarize
from repro.grubsim import DPPerformanceModel, GrubSim
from repro.net import GT3_PROFILE


@pytest.fixture(scope="module")
def configs():
    base = smoke_config(n_clients=8, duration_s=200.0)
    return [base.with_(decision_points=k, name=f"par-{k}dp")
            for k in (1, 2, 3)]


class TestSummarize:
    def test_summary_matches_result(self, configs):
        result = run_experiment(configs[0])
        s = summarize(result)
        assert s.n_jobs == result.n_jobs
        assert s.peak_throughput == \
            result.diperf().throughput_stats().peak
        assert s.accuracy("handled") == pytest.approx(
            result.accuracy("handled"), abs=0.001)
        assert s.fallbacks == result.client_fallbacks()

    def test_trace_roundtrip_feeds_grubsim(self, configs):
        result = run_experiment(configs[0])
        s = summarize(result)
        trace = s.to_trace()
        assert trace.n_queries == result.trace.n_queries
        sized = GrubSim(DPPerformanceModel.from_profile(GT3_PROFILE)).replay(
            trace, initial_dps=1)
        assert sized.final_dps >= 1

    def test_summary_is_picklable(self, configs):
        import pickle
        s = summarize(run_experiment(configs[0]))
        restored = pickle.loads(pickle.dumps(s))
        assert isinstance(restored, RunSummary)
        assert restored.n_jobs == s.n_jobs


class TestRunParallel:
    def test_empty(self):
        assert run_parallel([]) == []

    def test_serial_path(self, configs):
        out = run_parallel(configs[:1], max_workers=1)
        assert len(out) == 1 and out[0].config.name == "par-1dp"

    def test_parallel_matches_serial(self, configs):
        serial = [summarize(run_experiment(c)) for c in configs]
        parallel = run_parallel(configs, max_workers=2)
        assert [s.config.name for s in parallel] == \
            [s.config.name for s in serial]
        for s, p in zip(serial, parallel):
            # Deterministic simulations: identical outcomes either way.
            assert p.n_jobs == s.n_jobs
            assert p.peak_throughput == pytest.approx(s.peak_throughput)
            assert np.allclose(p.throughput_series[1],
                               s.throughput_series[1])

    def test_results_in_input_order(self, configs):
        out = run_parallel(list(reversed(configs)), max_workers=3)
        assert [s.config.name for s in out] == \
            ["par-3dp", "par-2dp", "par-1dp"]


def _naming_worker(cfg):
    """Module-level so the pooled path can pickle it by qualified name."""
    return {"ran": cfg.name}


class TestCustomWorker:
    """run_parallel(worker=...) drives alternate cell bodies — the hook
    the campaign runner uses for its checkpoint-aware worker."""

    def test_in_process_path(self, configs):
        out = run_parallel(configs[:1], max_workers=1,
                           worker=_naming_worker)
        assert out == [{"ran": "par-1dp"}]

    def test_pooled_path_keeps_order(self, configs):
        out = run_parallel(list(reversed(configs)), max_workers=2,
                           worker=_naming_worker)
        assert out == [{"ran": "par-3dp"}, {"ran": "par-2dp"},
                       {"ran": "par-1dp"}]


class TestSummaryDigest:
    def test_digest_is_deterministic(self, configs):
        from repro.experiments.parallel import summary_digest
        a = summary_digest(summarize(run_experiment(configs[0])))
        b = summary_digest(summarize(run_experiment(configs[0])))
        assert a == b and len(a) == 8

    def test_digest_separates_configs(self, configs):
        from repro.experiments.parallel import summary_digest
        digests = [summary_digest(s) for s in
                   run_parallel(configs, max_workers=2)]
        assert len(set(digests)) == len(digests)

    def test_worker_count_does_not_change_digests(self, configs):
        # The `digruber diff --pair workers` claim in unit form.
        from repro.experiments.parallel import summary_digest
        one = [summary_digest(s) for s in
               run_parallel(configs, max_workers=1)]
        four = [summary_digest(s) for s in
                run_parallel(configs, max_workers=4)]
        assert one == four



# -- broken-pool recovery ----------------------------------------------------
# Pool workers pickle the submitted callable by qualified name, so the
# poison stand-ins must live at module level; the fork start method
# (asserted in the fixture) carries the monkeypatched module globals
# into the worker processes.

_FLAKY_MARKER = None  # set per-test; a path that exists once the cell died


def _poison_worker(cfg):
    from repro.experiments.parallel import summarize
    if cfg.name.startswith("poison"):
        import os
        os._exit(1)  # interpreter death, not an exception
    if cfg.name == "flaky" and not _FLAKY_MARKER.exists():
        _FLAKY_MARKER.write_text("x")
        import os
        os._exit(1)
    return summarize(run_experiment(cfg))


class TestBrokenPool:
    """A worker process dying mid-sweep must not abort the whole sweep.

    The poison worker calls ``os._exit`` — an interpreter death, not an
    exception — which breaks the entire :class:`ProcessPoolExecutor`
    (every outstanding future raises :class:`BrokenProcessPool`).  The
    sweep must keep finished cells, retry the stranded ones on a fresh
    pool, and report the unrecoverable cell in place as a
    :class:`FailedCell`.
    """

    @pytest.fixture
    def poisoned(self, monkeypatch, tmp_path):
        import multiprocessing
        assert "fork" in multiprocessing.get_all_start_methods()
        import repro.experiments.parallel as par
        monkeypatch.setattr(par, "_worker", _poison_worker)
        import sys
        mod = sys.modules[__name__]
        monkeypatch.setattr(mod, "_FLAKY_MARKER", tmp_path / "died-once")

    def test_surviving_cells_keep_results(self, poisoned):
        from repro.experiments.parallel import FailedCell, summary_digest
        base = smoke_config(n_clients=6, duration_s=120.0, seed=1105)
        configs = [base.with_(name="bp-a"),
                   base.with_(name="poison", seed=1106),
                   base.with_(name="bp-c", seed=1107)]
        out = run_parallel(configs, max_workers=2)
        assert len(out) == 3
        assert isinstance(out[1], FailedCell)
        assert not out[1]  # falsy placeholder
        assert out[1].config.name == "poison"
        assert "died" in out[1].error
        # The survivors are real summaries, bit-identical to clean
        # serial runs of the same seed-pinned configs.
        for slot in (0, 2):
            assert isinstance(out[slot], RunSummary)
            clean = summarize(run_experiment(configs[slot]))
            assert summary_digest(out[slot]) == summary_digest(clean)

    def test_transient_death_recovers_on_retry(self, poisoned):
        """A cell that kills only its *first* worker (a stray OOM kill)
        comes back clean from the one-shot retry pool."""
        from repro.experiments.parallel import summary_digest
        base = smoke_config(n_clients=6, duration_s=120.0, seed=1105)
        configs = [base.with_(name="bp-a"),
                   base.with_(name="flaky", seed=1106)]
        out = run_parallel(configs, max_workers=2)
        assert all(isinstance(s, RunSummary) for s in out)
        clean = summarize(run_experiment(configs[1]))
        assert summary_digest(out[1]) == summary_digest(clean)

    def test_in_process_path_unaffected(self):
        """max_workers=1 never enters a pool, so nothing to recover."""
        from repro.experiments.parallel import FailedCell
        base = smoke_config(n_clients=6, duration_s=120.0, seed=1105)
        out = run_parallel([base], max_workers=1)
        assert isinstance(out[0], RunSummary)
        assert not isinstance(out[0], FailedCell)
