"""Smoke test for the full-reproduction report generator."""

import io

from repro.experiments.report import generate_report


class TestReportGenerator:
    def test_generates_all_sections(self):
        buf = io.StringIO()
        results = generate_report(duration_s=150.0, out=buf,
                                  intervals_min=(1.0, 3.0))
        text = buf.getvalue()
        for section in ("Fig 1", "Fig 5", "Fig 7", "Table 1", "Fig 8",
                        "Fig 9", "Table 2", "Fig 12", "Table 3",
                        "Headline shapes"):
            assert section in text, section
        assert "GRUB-SIM" in text
        # Raw results exposed for programmatic use.
        assert set(results) == {"fig1", "gt3", "fig8", "gt4", "fig12",
                                "table3", "failed_cells"}
        assert results["failed_cells"] == []

    def test_cli_writes_file(self, tmp_path):
        from repro.experiments.report import main
        out = tmp_path / "report.md"
        rc = main(["--duration", "120", "--out", str(out)])
        assert rc == 0
        assert "DI-GRUBER reproduction report" in out.read_text()

    def test_failed_cell_renders_note_not_crash(self, monkeypatch):
        """A FailedCell from the parallel sweep must degrade the report
        section-by-section, never raise (the report.py bugfix batch)."""
        import repro.experiments.parallel as par
        from repro.experiments.parallel import FailedCell
        real = par.run_parallel

        def breaking(configs, max_workers=None, worker=None):
            out = real(configs, max_workers=max_workers)
            # Slot 2 is the gt3 k=10 sweep cell -> feeds Fig 7,
            # Table 1's 10-DP column, and the headline speedup line.
            out[2] = FailedCell(config=configs[2],
                                error="worker process died (twice)")
            return out

        monkeypatch.setattr(par, "run_parallel", breaking)
        buf = io.StringIO()
        results = generate_report(duration_s=120.0, out=buf,
                                  intervals_min=(1.0, 3.0),
                                  parallel=True, max_workers=2)
        text = buf.getvalue()
        assert isinstance(results["gt3"][10], FailedCell)
        assert results["failed_cells"]
        assert "Failed cells" in text
        assert "FAILED" in text
        # Figure numbering is preserved: the dead slot still renders its
        # Fig 7 header, annotated instead of plotted.
        assert "Fig 7" in text
        assert "n/a (cell failed)" in text
        # Live cells still render their tables.
        assert "Table 1" in text and "Table 2" in text

    def test_failed_1dp_cell_skips_table3(self, monkeypatch):
        """Table 3 needs the 1-DP traces from both sweeps; with that
        cell dead it is skipped with a note instead of dividing by a
        missing key."""
        import repro.experiments.parallel as par
        from repro.experiments.parallel import FailedCell
        real = par.run_parallel

        def breaking(configs, max_workers=None, worker=None):
            out = real(configs, max_workers=max_workers)
            out[0] = FailedCell(config=configs[0],
                                error="worker process died (twice)")
            return out

        monkeypatch.setattr(par, "run_parallel", breaking)
        buf = io.StringIO()
        results = generate_report(duration_s=120.0, out=buf,
                                  intervals_min=(1.0, 3.0),
                                  parallel=True, max_workers=2)
        assert results["table3"] is None
        assert "skipped (1-DP trace unavailable)" in buf.getvalue()

    def test_parallel_report_identical_to_serial(self, tmp_path):
        """Determinism: the parallel path emits the same artifact text."""
        import io
        serial, parallel = io.StringIO(), io.StringIO()
        generate_report(duration_s=120.0, out=serial,
                        intervals_min=(1.0, 3.0))
        generate_report(duration_s=120.0, out=parallel,
                        intervals_min=(1.0, 3.0), parallel=True,
                        max_workers=2)
        assert serial.getvalue() == parallel.getvalue()
