"""Smoke test for the full-reproduction report generator."""

import io

from repro.experiments.report import generate_report


class TestReportGenerator:
    def test_generates_all_sections(self):
        buf = io.StringIO()
        results = generate_report(duration_s=150.0, out=buf,
                                  intervals_min=(1.0, 3.0))
        text = buf.getvalue()
        for section in ("Fig 1", "Fig 5", "Fig 7", "Table 1", "Fig 8",
                        "Fig 9", "Table 2", "Fig 12", "Table 3",
                        "Headline shapes"):
            assert section in text, section
        assert "GRUB-SIM" in text
        # Raw results exposed for programmatic use.
        assert set(results) == {"fig1", "gt3", "fig8", "gt4", "fig12",
                                "table3"}

    def test_cli_writes_file(self, tmp_path):
        from repro.experiments.report import main
        out = tmp_path / "report.md"
        rc = main(["--duration", "120", "--out", str(out)])
        assert rc == 0
        assert "DI-GRUBER reproduction report" in out.read_text()

    def test_parallel_report_identical_to_serial(self, tmp_path):
        """Determinism: the parallel path emits the same artifact text."""
        import io
        serial, parallel = io.StringIO(), io.StringIO()
        generate_report(duration_s=120.0, out=serial,
                        intervals_min=(1.0, 3.0))
        generate_report(duration_s=120.0, out=parallel,
                        intervals_min=(1.0, 3.0), parallel=True,
                        max_workers=2)
        assert serial.getvalue() == parallel.getvalue()
