"""Theory-vs-simulation validation of the canonical configurations."""

import pytest

from repro.experiments import canonical_gt3, canonical_gt4, run_experiment
from repro.experiments.validation import predict_equilibrium, validate_result


class TestPrediction:
    def test_saturated_single_dp_throughput_is_capacity(self):
        cfg = canonical_gt3(1)
        pred = predict_equilibrium(cfg)
        # 120 clients on a ~2 q/s station: fully saturated.
        assert pred.throughput_qps == pytest.approx(
            cfg.profile.query_capacity_qps, rel=0.01)

    def test_more_dps_predict_more_throughput(self):
        p1 = predict_equilibrium(canonical_gt3(1))
        p3 = predict_equilibrium(canonical_gt3(3))
        p10 = predict_equilibrium(canonical_gt3(10))
        assert p1.throughput_qps < p3.throughput_qps < p10.throughput_qps

    def test_ten_dps_partially_client_limited(self):
        """At 10 DPs the fleet can no longer saturate the stations."""
        p10 = predict_equilibrium(canonical_gt3(10))
        capacity = 10 * canonical_gt3(10).profile.query_capacity_qps
        assert p10.throughput_qps < 0.85 * capacity

    def test_lan_prediction_faster(self):
        wan = predict_equilibrium(canonical_gt3(10))
        lan = predict_equilibrium(canonical_gt3(10, lan=True))
        assert lan.response_s < wan.response_s
        assert lan.throughput_qps > wan.throughput_qps


class TestValidationAgainstRuns:
    @pytest.mark.parametrize("maker,k", [
        (canonical_gt3, 1),
        (canonical_gt3, 3),
        (canonical_gt4, 1),
    ])
    def test_measured_tracks_prediction(self, maker, k):
        result = run_experiment(maker(k, duration_s=1200.0))
        report = validate_result(result)
        assert report.throughput_error < 0.35, report.summary()
        assert report.response_error < 0.35, report.summary()

    def test_summary_renders(self):
        result = run_experiment(canonical_gt3(1, duration_s=600.0))
        text = validate_result(result).summary()
        assert "predicted" in text and "measured" in text
