"""Tests for repro.faults: netem rules, schedules, injector, scenarios."""

import numpy as np
import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    LinkFault,
    TransportFaultModel,
    build_scenario,
    scenario_names,
)
from repro.faults.netem import CLEAN_FATE
from repro.net import ConstantLatency, Network, RpcTimeout, cross_pairs
from repro.net.transport import Endpoint, Message
from repro.sim import Simulator


def make_model(seed=0):
    sim = Simulator()
    return sim, TransportFaultModel(sim, np.random.default_rng(seed))


def msg(src="a", dst="b", kind="oneway", op="x"):
    return Message(src=src, dst=dst, kind=kind, op=op, payload=None)


class TestLinkFault:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinkFault(loss=1.5)
        with pytest.raises(ValueError):
            LinkFault(dup_rate=-0.1)
        with pytest.raises(ValueError):
            LinkFault(extra_delay_s=-1.0)

    def test_noop_detection(self):
        assert LinkFault().is_noop
        assert not LinkFault(cut=True).is_noop
        assert not LinkFault(loss=0.1).is_noop

    def test_noop_rule_not_installed(self):
        sim, model = make_model()
        model.set_link("a", "b", LinkFault())
        model.set_node("c", LinkFault())
        assert model.n_rules == 0


class TestTransportFaultModel:
    def test_clean_fate_without_rules(self):
        sim, model = make_model()
        assert model.on_message(msg()) is CLEAN_FATE

    def test_cut_drops_everything(self):
        sim, model = make_model()
        model.cut_link("a", "b")
        fate = model.on_message(msg("a", "b"))
        assert fate.drop and fate.extra_delays == ()
        assert model.dropped == 1
        assert sim.metrics.counter_value("faults.msgs_dropped") == 1

    def test_asymmetric_cut_is_one_way(self):
        sim, model = make_model()
        model.set_link("a", "b", LinkFault(cut=True), symmetric=False)
        assert model.on_message(msg("a", "b")).drop
        assert not model.on_message(msg("b", "a")).drop

    def test_symmetric_cut_covers_both_directions(self):
        sim, model = make_model()
        model.cut_link("a", "b")
        assert model.on_message(msg("a", "b")).drop
        assert model.on_message(msg("b", "a")).drop
        model.clear_link("a", "b")
        assert not model.on_message(msg("a", "b")).drop

    def test_loss_drops_proportionally(self):
        sim, model = make_model()
        model.set_link("a", "b", LinkFault(loss=0.5))
        fates = [model.on_message(msg("a", "b")) for _ in range(2000)]
        dropped = sum(f.drop for f in fates)
        assert 850 <= dropped <= 1150

    def test_extra_delay_applied(self):
        sim, model = make_model()
        model.set_link("a", "b", LinkFault(extra_delay_s=2.5))
        fate = model.on_message(msg("a", "b"))
        assert fate.extra_delays == (2.5,)
        assert model.delayed == 1

    def test_jitter_bounded_and_random(self):
        sim, model = make_model()
        model.set_link("a", "b", LinkFault(jitter_s=3.0))
        delays = [model.on_message(msg("a", "b")).extra_delays[0]
                  for _ in range(200)]
        assert all(0.0 <= d <= 3.0 for d in delays)
        assert len(set(delays)) > 100  # actually jittered

    def test_duplication_adds_copies(self):
        sim, model = make_model()
        model.set_link("a", "b", LinkFault(dup_rate=1.0))
        fate = model.on_message(msg("a", "b"))
        assert not fate.drop
        assert len(fate.extra_delays) == 2
        assert model.duplicated == 1

    def test_duplicate_copies_get_independent_jitter(self):
        sim, model = make_model()
        model.set_link("a", "b", LinkFault(dup_rate=1.0, jitter_s=5.0))
        fate = model.on_message(msg("a", "b"))
        assert len(fate.extra_delays) == 2
        assert fate.extra_delays[0] != fate.extra_delays[1]

    def test_node_rule_applies_both_directions(self):
        sim, model = make_model()
        model.isolate_node("n")
        assert model.on_message(msg("n", "b")).drop
        assert model.on_message(msg("a", "n")).drop
        assert not model.on_message(msg("a", "b")).drop
        model.restore_node("n")
        assert not model.on_message(msg("n", "b")).drop

    def test_node_and_link_rules_compose(self):
        sim, model = make_model()
        model.set_node("a", LinkFault(extra_delay_s=1.0))
        model.set_link("a", "b", LinkFault(extra_delay_s=2.0))
        fate = model.on_message(msg("a", "b"))
        assert fate.extra_delays == (3.0,)

    def test_determinism_same_seed(self):
        fates = []
        for _ in range(2):
            sim, model = make_model(seed=42)
            model.set_link("a", "b", LinkFault(loss=0.3, jitter_s=2.0,
                                               dup_rate=0.2))
            fates.append([model.on_message(msg("a", "b"))
                          for _ in range(500)])
        assert fates[0] == fates[1]


class _Sink(Endpoint):
    def __init__(self, network, node_id):
        super().__init__(network, node_id)
        self.received = 0
        self.register_handler("echo", lambda payload, src: {"ok": True})

    def on_oneway(self, message):
        self.received += 1


class TestTransportIntegration:
    def _net(self, seed=0):
        sim = Simulator()
        net = Network(sim, ConstantLatency(0.1))
        net.faults = TransportFaultModel(sim, np.random.default_rng(seed))
        return sim, net

    def test_cut_link_blocks_oneways(self):
        sim, net = self._net()
        sink = _Sink(net, "b")
        net.faults.cut_link("a", "b")
        net.send_oneway("a", "b", "ping", {})
        sim.run(until=10.0)
        assert sink.received == 0
        assert net.stats.dropped == 1

    def test_dup_delivers_twice(self):
        sim, net = self._net()
        sink = _Sink(net, "b")
        net.faults.set_link("a", "b", LinkFault(dup_rate=1.0))
        net.send_oneway("a", "b", "ping", {})
        sim.run(until=10.0)
        assert sink.received == 2

    def test_cut_request_times_out(self):
        sim, net = self._net()
        _Sink(net, "b")
        net.faults.cut_link("a", "b")
        ev = net.rpc("a", "b", "echo", {}, timeout=5.0)
        sim.run(until=10.0)
        assert ev.triggered and not ev.ok
        assert isinstance(ev.value, RpcTimeout)

    def test_cut_request_without_timeout_abandoned(self):
        """The pending-RPC table must not leak on fault-dropped requests."""
        sim, net = self._net()
        _Sink(net, "b")
        net.faults.cut_link("a", "b")
        ev = net.rpc("a", "b", "echo", {})
        sim.run(until=10.0)
        assert not ev.triggered
        assert net._pending_rpcs == {}
        assert net.stats.rpcs_lost == 1

    def test_cut_response_abandoned(self):
        """Asymmetric cut on the return path reaps the pending entry."""
        sim, net = self._net()
        _Sink(net, "b")
        net.faults.set_link("b", "a", LinkFault(cut=True), symmetric=False)
        ev = net.rpc("a", "b", "echo", {})
        sim.run(until=10.0)
        assert not ev.triggered
        assert net._pending_rpcs == {}

    def test_duplicated_response_completes_once(self):
        sim, net = self._net()
        _Sink(net, "b")
        net.faults.set_link("a", "b", LinkFault(dup_rate=1.0))
        ev = net.rpc("a", "b", "echo", {})
        sim.run(until=10.0)
        assert ev.ok
        # The extra copies are discarded, not double-completed.
        assert net.stats.rpcs_completed == 1


class TestCrossPairs:
    def test_all_cross_island_ordered_pairs(self):
        pairs = cross_pairs([["a", "b"], ["c"]])
        assert set(pairs) == {("a", "c"), ("b", "c"), ("c", "a"), ("c", "b")}

    def test_rejects_duplicate_membership(self):
        with pytest.raises(ValueError):
            cross_pairs([["a"], ["a", "b"]])

    def test_three_islands(self):
        pairs = cross_pairs([["a"], ["b"], ["c"]])
        assert len(pairs) == 6


class TestFaultSchedule:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(at=-1.0, kind="dp.crash")
        with pytest.raises(ValueError):
            FaultEvent(at=0.0, kind="bogus")

    def test_events_sorted_by_time(self):
        sched = (FaultSchedule()
                 .add(30.0, "heal")
                 .add(10.0, "dp.crash", dp="dp0")
                 .add(20.0, "dp.restart", dp="dp0"))
        assert [e.at for e in sched] == [10.0, 20.0, 30.0]
        assert sched.horizon_s == 30.0

    def test_json_roundtrip(self):
        sched = (FaultSchedule(name="s")
                 .add(10.0, "link.fault", a="x", b="y", cut=True)
                 .add(20.0, "node.degrade", dp="dp0", factor=4.0))
        again = FaultSchedule.from_json(sched.to_json(), name="s")
        assert again.to_dicts() == sched.to_dicts()

    def test_all_kinds_constructible(self):
        for kind in FAULT_KINDS:
            FaultEvent(at=0.0, kind=kind)


class _DpStub:
    """Just enough surface for the injector's dp-targeted events."""

    class _Container:
        def __init__(self):
            self.degrade_factor = 1.0

        def set_degradation(self, factor):
            self.degrade_factor = factor

    def __init__(self):
        self.container = self._Container()
        self.crashed = 0
        self.restarted = 0

    def crash(self):
        self.crashed += 1

    def restart(self):
        self.restarted += 1


class _DeploymentStub:
    def __init__(self, dps):
        self.decision_points = dps

    def dp(self, dp_id):
        return self.decision_points[dp_id]


class TestFaultInjector:
    def _injector(self, schedule, seed=0):
        sim = Simulator()
        net = Network(sim, ConstantLatency(0.1))
        dps = {"dp0": _DpStub(), "dp1": _DpStub()}
        inj = FaultInjector(sim, net, schedule, np.random.default_rng(seed),
                            deployment=_DeploymentStub(dps))
        return sim, net, dps, inj

    def test_installs_fault_model(self):
        sim, net, dps, inj = self._injector(FaultSchedule())
        assert net.faults is inj.model

    def test_events_fire_at_scheduled_times(self):
        sched = (FaultSchedule()
                 .add(10.0, "link.fault", a="x", b="y", cut=True)
                 .add(20.0, "link.restore", a="x", b="y"))
        sim, net, dps, inj = self._injector(sched)
        assert inj.arm() == 2
        sim.run(until=5.0)
        assert net.faults.link_fault("x", "y") is None
        sim.run(until=15.0)
        assert net.faults.link_fault("x", "y").cut
        sim.run(until=25.0)
        assert net.faults.link_fault("x", "y") is None
        assert len(inj.applied) == 2
        assert sim.metrics.counter_value("faults.injected") == 2

    def test_arm_twice_rejected(self):
        sim, net, dps, inj = self._injector(FaultSchedule())
        inj.arm()
        with pytest.raises(RuntimeError):
            inj.arm()

    def test_injection_traced_with_namespaced_args(self):
        """Tracing an event whose args include ``node`` must not
        collide with emit()'s own node= parameter (regression)."""
        sched = (FaultSchedule()
                 .add(10.0, "node.fault", node="dp0", loss=0.5)
                 .add(20.0, "node.restore", node="dp0"))
        sim, net, dps, inj = self._injector(sched)
        sim.trace.enabled = True
        inj.arm()
        sim.run(until=30.0)
        events = sim.trace.events("fault.inject")
        assert [e.detail["fault_kind"] for e in events] == ["node.fault",
                                                           "node.restore"]
        assert events[0].detail["arg_node"] == "dp0"
        assert events[0].node == "injector"

    def test_dp_crash_restart_dispatch(self):
        sched = (FaultSchedule()
                 .add(10.0, "dp.crash", dp="dp0")
                 .add(20.0, "dp.restart", dp="dp0"))
        sim, net, dps, inj = self._injector(sched)
        inj.arm()
        sim.run(until=30.0)
        assert dps["dp0"].crashed == 1
        assert dps["dp0"].restarted == 1
        assert dps["dp1"].crashed == 0

    def test_degrade_sets_container_factor(self):
        sched = (FaultSchedule()
                 .add(10.0, "node.degrade", dp="dp1", factor=4.0)
                 .add(20.0, "node.degrade", dp="dp1", factor=1.0))
        sim, net, dps, inj = self._injector(sched)
        inj.arm()
        sim.run(until=15.0)
        assert dps["dp1"].container.degrade_factor == 4.0
        sim.run(until=25.0)
        assert dps["dp1"].container.degrade_factor == 1.0

    def test_partition_and_heal_exact(self):
        """heal removes exactly the cuts the partition installed."""
        sched = (FaultSchedule()
                 .add(10.0, "partition", islands=[["a", "b"], ["c"]])
                 .add(20.0, "heal"))
        sim, net, dps, inj = self._injector(sched)
        # A pre-existing unrelated rule must survive the heal.
        inj.model.cut_link("q", "r", symmetric=False)
        inj.arm()
        sim.run(until=15.0)
        assert inj.model.link_fault("a", "c").cut
        assert inj.model.link_fault("c", "b").cut
        assert inj.model.link_fault("a", "b") is None  # same island
        sim.run(until=25.0)
        assert inj.model.link_fault("a", "c") is None
        assert inj.model.link_fault("q", "r").cut  # untouched

    def test_dp_event_without_deployment_is_error(self):
        sim = Simulator()
        net = Network(sim, ConstantLatency(0.1))
        sched = FaultSchedule().add(1.0, "dp.crash", dp="dp0")
        inj = FaultInjector(sim, net, sched, np.random.default_rng(0))
        inj.arm()
        with pytest.raises(RuntimeError):
            sim.run(until=5.0)


class TestScenarios:
    def test_all_scenarios_build(self):
        for name in scenario_names():
            sched = build_scenario(name, dp_ids=["dp0", "dp1"],
                                   hosts=["h0", "h1", "h2"], duration_s=600.0)
            assert len(sched) >= 1
            assert sched.horizon_s <= 600.0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            build_scenario("bogus", dp_ids=["dp0"], hosts=[], duration_s=60.0)

    def test_scenarios_are_pure(self):
        a = build_scenario("partition2", dp_ids=["dp0", "dp1"],
                           hosts=["h0", "h1"], duration_s=300.0)
        b = build_scenario("partition2", dp_ids=["dp0", "dp1"],
                           hosts=["h0", "h1"], duration_s=300.0)
        assert a.to_dicts() == b.to_dicts()

    def test_partition2_splits_hosts_across_islands(self):
        sched = build_scenario("partition2", dp_ids=["dp0", "dp1"],
                               hosts=["h0", "h1", "h2", "h3"],
                               duration_s=300.0)
        islands = sched.events[0].args["islands"]
        assert len(islands) == 2
        # Both islands contain a decision point and some hosts.
        assert any(m.startswith("dp") for m in islands[0])
        assert any(m.startswith("dp") for m in islands[1])
        assert any(m.startswith("h") for m in islands[0])
        assert any(m.startswith("h") for m in islands[1])
