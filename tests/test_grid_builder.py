"""Tests for grid construction and the VO hierarchy."""

import pytest

from repro.grid import GridBuilder, VORegistry, VirtualOrganization
from repro.sim import RngRegistry, Simulator


@pytest.fixture
def builder():
    sim = Simulator()
    return GridBuilder(sim, RngRegistry(0).stream("grid"))


class TestVORegistry:
    def test_create_hierarchy(self):
        reg = VORegistry()
        vo = reg.create("atlas", n_groups=3, users_per_group=2)
        assert len(vo.groups) == 3
        assert len(vo.users) == 6
        assert all(u.vo == "atlas" for u in vo.users)

    def test_duplicate_vo_rejected(self):
        reg = VORegistry()
        reg.create("cms")
        with pytest.raises(ValueError):
            reg.create("cms")

    def test_duplicate_group_rejected(self):
        vo = VirtualOrganization("v")
        vo.add_group("g")
        with pytest.raises(ValueError):
            vo.add_group("g")

    def test_lookup(self):
        reg = VORegistry()
        reg.create("cdf")
        assert reg.get("cdf").name == "cdf"
        assert "cdf" in reg and "d0" not in reg
        with pytest.raises(KeyError):
            reg.get("d0")

    def test_iteration_and_len(self):
        reg = VORegistry()
        for n in ("a", "b"):
            reg.create(n)
        assert len(reg) == 2
        assert {v.name for v in reg} == {"a", "b"}


class TestGridBuilder:
    def test_cpu_total_exact(self, builder):
        grid = builder.build(n_sites=20, total_cpus=1000)
        assert grid.total_cpus == 1000
        assert len(grid) == 20

    def test_min_site_size_respected(self, builder):
        grid = builder.build(n_sites=50, total_cpus=2000, min_site_cpus=8)
        assert all(s.total_cpus >= 8 for s in grid.sites.values())

    def test_infeasible_rejected(self, builder):
        with pytest.raises(ValueError):
            builder.build(n_sites=100, total_cpus=100, min_site_cpus=8)
        with pytest.raises(ValueError):
            builder.build(n_sites=0, total_cpus=100)

    def test_heavy_tail(self, builder):
        grid = builder.build(n_sites=100, total_cpus=10000, size_sigma=1.0)
        sizes = sorted((s.total_cpus for s in grid.sites.values()), reverse=True)
        # Top decile holds well over its proportional share.
        assert sum(sizes[:10]) > 0.2 * 10000

    def test_grid3_preset(self, builder):
        grid = builder.grid3()
        assert len(grid) == 30 and grid.total_cpus == 4500
        assert len(grid.vos) == 10

    def test_grid3_x10_preset(self, builder):
        grid = builder.grid3_x10()
        assert len(grid) == 300 and grid.total_cpus == 40000

    def test_uniform_preset(self, builder):
        grid = builder.uniform(n_sites=5, cpus_per_site=16)
        assert [s.total_cpus for s in grid.sites.values()] == [16] * 5

    def test_deterministic(self):
        def build():
            b = GridBuilder(Simulator(), RngRegistry(7).stream("grid"))
            return b.build(n_sites=30, total_cpus=3000)
        g1, g2 = build(), build()
        assert ([s.total_cpus for s in g1.sites.values()]
                == [s.total_cpus for s in g2.sites.values()])

    def test_free_cpu_vector_matches_sites(self, builder):
        grid = builder.uniform(n_sites=4, cpus_per_site=8)
        vec = grid.free_cpu_vector()
        assert vec.tolist() == [8, 8, 8, 8]
        assert grid.total_free_cpus == 32

    def test_site_lookup(self, builder):
        grid = builder.uniform(n_sites=2, cpus_per_site=4, name="u")
        assert grid.site("u-site000").total_cpus == 4
        with pytest.raises(KeyError):
            grid.site("nope")

    def test_snapshot_covers_all_sites(self, builder):
        grid = builder.uniform(n_sites=3, cpus_per_site=4)
        snap = grid.snapshot()
        assert set(snap) == set(grid.site_names)
