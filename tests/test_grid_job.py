"""Tests for the job lifecycle state machine."""

import pytest

from repro.grid import Job, JobState


def make_job(**kw):
    defaults = dict(vo="vo0", group="g0", user="u0")
    defaults.update(kw)
    return Job(**defaults)


class TestValidation:
    def test_defaults(self):
        j = make_job()
        assert j.state == JobState.CREATED
        assert j.cpus == 1

    def test_unique_ids(self):
        assert make_job().jid != make_job().jid

    def test_zero_cpus_rejected(self):
        with pytest.raises(ValueError):
            make_job(cpus=0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            make_job(duration_s=0.0)


class TestTransitions:
    def test_full_lifecycle(self):
        j = make_job(duration_s=100.0)
        j.mark_created(0.0)
        j.mark_dispatched(5.0, "siteA")
        j.mark_running(7.0)
        j.mark_completed(107.0)
        assert j.state == JobState.COMPLETED
        assert j.site == "siteA"
        assert j.queue_time_s == 2.0
        assert j.execution_time_s == 100.0
        assert j.cpu_seconds == 100.0

    def test_cpu_seconds_scales_with_cpus(self):
        j = make_job(cpus=4, duration_s=50.0)
        j.mark_dispatched(0.0, "s")
        j.mark_running(0.0)
        j.mark_completed(50.0)
        assert j.cpu_seconds == 200.0

    def test_skip_state_rejected(self):
        j = make_job()
        with pytest.raises(ValueError):
            j.mark_running(1.0)

    def test_double_dispatch_rejected(self):
        j = make_job()
        j.mark_dispatched(1.0, "s")
        with pytest.raises(ValueError):
            j.mark_dispatched(2.0, "s2")

    def test_metrics_none_before_reached(self):
        j = make_job()
        assert j.queue_time_s is None
        assert j.execution_time_s is None
        assert j.cpu_seconds is None

    def test_fail_from_running(self):
        j = make_job()
        j.mark_dispatched(0.0, "s")
        j.mark_running(1.0)
        j.mark_failed(2.0)
        assert j.state == JobState.FAILED

    def test_fail_after_completion_rejected(self):
        j = make_job()
        j.mark_dispatched(0.0, "s")
        j.mark_running(0.0)
        j.mark_completed(1.0)
        with pytest.raises(ValueError):
            j.mark_failed(2.0)


class TestReplan:
    def test_replan_resets_to_created(self):
        j = make_job()
        j.mark_dispatched(0.0, "s")
        j.mark_running(1.0)
        j.mark_failed(2.0)
        j.reset_for_replan()
        assert j.state == JobState.CREATED
        assert j.site is None and j.started_at is None
        assert j.replans == 1

    def test_replan_only_from_failed(self):
        j = make_job()
        with pytest.raises(ValueError):
            j.reset_for_replan()

    def test_replanned_job_can_complete(self):
        j = make_job()
        j.mark_dispatched(0.0, "s1")
        j.mark_running(1.0)
        j.mark_failed(2.0)
        j.reset_for_replan()
        j.mark_dispatched(3.0, "s2")
        j.mark_running(4.0)
        j.mark_completed(5.0)
        assert j.state == JobState.COMPLETED and j.site == "s2"
