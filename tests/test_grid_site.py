"""Tests for site-local FIFO scheduling and accounting."""

import pytest

from repro.grid import Cluster, Job, JobState, Site
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


def make_site(sim, cpus=4, name="s"):
    return Site(sim, name, [Cluster(f"{name}-c0", cpus)])


def make_job(cpus=1, duration=10.0):
    return Job(vo="vo0", group="g0", user="u0", cpus=cpus, duration_s=duration)


class TestConstruction:
    def test_total_cpus_sums_clusters(self, sim):
        s = Site(sim, "s", [Cluster("a", 3), Cluster("b", 5)])
        assert s.total_cpus == 8

    def test_empty_clusters_rejected(self, sim):
        with pytest.raises(ValueError):
            Site(sim, "s", [])

    def test_bad_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster("c", 0)


class TestScheduling:
    def test_job_starts_immediately_when_free(self, sim):
        s = make_site(sim)
        j = make_job()
        s.submit(j)
        assert j.state == JobState.RUNNING
        assert s.free_cpus == 3

    def test_job_completes_after_duration(self, sim):
        s = make_site(sim)
        j = make_job(duration=25.0)
        s.submit(j)
        sim.run()
        assert j.state == JobState.COMPLETED
        assert j.completed_at == 25.0
        assert s.free_cpus == 4

    def test_queueing_when_full(self, sim):
        s = make_site(sim, cpus=1)
        j1, j2 = make_job(duration=10.0), make_job(duration=10.0)
        s.submit(j1)
        s.submit(j2)
        assert j2.state == JobState.DISPATCHED
        assert s.queue_length == 1
        sim.run()
        assert j2.started_at == 10.0 and j2.completed_at == 20.0

    def test_fifo_order(self, sim):
        s = make_site(sim, cpus=1)
        jobs = [make_job(duration=1.0) for _ in range(5)]
        for j in jobs:
            s.submit(j)
        sim.run()
        starts = [j.started_at for j in jobs]
        assert starts == sorted(starts)

    def test_head_of_line_blocking(self, sim):
        s = make_site(sim, cpus=4)
        big = make_job(cpus=4, duration=10.0)
        blocker = make_job(cpus=3, duration=10.0)
        small = make_job(cpus=1, duration=10.0)
        s.submit(big)       # occupies everything
        s.submit(blocker)   # waits
        s.submit(small)     # fits now, but FIFO blocks it behind `blocker`
        sim.run(until=5.0)
        assert blocker.state == JobState.DISPATCHED
        assert small.state == JobState.DISPATCHED

    def test_oversized_job_fails(self, sim):
        s = make_site(sim, cpus=2)
        j = make_job(cpus=8)
        s.submit(j)
        assert j.state == JobState.FAILED

    def test_multi_cpu_accounting(self, sim):
        s = make_site(sim, cpus=8)
        s.submit(make_job(cpus=3, duration=100.0))
        s.submit(make_job(cpus=4, duration=100.0))
        assert s.busy_cpus == 7 and s.free_cpus == 1

    def test_callbacks_fire(self, sim):
        s = make_site(sim)
        started, completed = [], []
        s.on_job_started.append(lambda j: started.append(j.jid))
        s.on_job_completed.append(lambda j: completed.append(j.jid))
        j = make_job(duration=5.0)
        s.submit(j)
        sim.run()
        assert started == [j.jid] and completed == [j.jid]

    def test_counters(self, sim):
        s = make_site(sim, cpus=1)
        for _ in range(3):
            s.submit(make_job(duration=1.0))
        sim.run()
        assert s.jobs_dispatched == 3 and s.jobs_completed == 3


class TestBackfill:
    def _backfill_site(self, sim, cpus=4):
        return Site(sim, "b", [Cluster("c", cpus)], backfill=True)

    def test_small_job_slips_past_blocked_wide_job(self, sim):
        s = self._backfill_site(sim)
        s.submit(make_job(cpus=3, duration=100.0))  # running, 1 free
        wide = make_job(cpus=4, duration=10.0)
        small = make_job(cpus=1, duration=10.0)
        s.submit(wide)   # cannot fit
        s.submit(small)  # fits the leftover CPU
        assert wide.state == JobState.DISPATCHED
        assert small.state == JobState.RUNNING

    def test_queue_order_respected_among_fitting(self, sim):
        s = self._backfill_site(sim, cpus=2)
        first = make_job(cpus=2, duration=10.0)
        second = make_job(cpus=1, duration=10.0)
        third = make_job(cpus=1, duration=10.0)
        s.submit(make_job(cpus=2, duration=5.0))  # occupies both CPUs
        for j in (first, second, third):
            s.submit(j)
        sim.run(until=6.0)
        # At t=5 both CPUs free: first (2 cpus) starts; others wait.
        assert first.state == JobState.RUNNING
        assert second.state == JobState.DISPATCHED

    def test_wide_job_eventually_runs(self, sim):
        s = self._backfill_site(sim)
        s.submit(make_job(cpus=4, duration=10.0))
        wide = make_job(cpus=4, duration=10.0)
        s.submit(wide)
        s.submit(make_job(cpus=1, duration=3.0))
        sim.run()
        assert wide.state == JobState.COMPLETED

    def test_capacity_never_exceeded(self, sim):
        s = self._backfill_site(sim, cpus=8)
        for cpus in (3, 3, 3, 2, 1, 5, 4):
            s.submit(make_job(cpus=cpus, duration=20.0))
        assert s.busy_cpus <= 8
        sim.run()
        assert s.jobs_completed == 7

    def test_builder_backfill_flag(self):
        from repro.grid import GridBuilder
        from repro.sim import RngRegistry
        sim = Simulator()
        grid = GridBuilder(sim, RngRegistry(0).stream("g")).build(
            n_sites=2, total_cpus=32, backfill=True)
        assert all(s.backfill for s in grid.sites.values())


class TestAccounting:
    def test_utilization_full_busy(self, sim):
        s = make_site(sim, cpus=2)
        s.submit(make_job(cpus=2, duration=10.0))
        sim.run(until=10.0)
        assert s.utilization() == pytest.approx(1.0)

    def test_utilization_partial(self, sim):
        s = make_site(sim, cpus=4)
        s.submit(make_job(cpus=1, duration=10.0))
        sim.run(until=20.0)
        # 1 cpu busy for 10 s of a 4-cpu site over 20 s => 10/(4*20)
        assert s.utilization() == pytest.approx(10.0 / 80.0)

    def test_utilization_zero_time(self, sim):
        assert make_site(sim).utilization() == 0.0

    def test_vo_cpu_seconds(self, sim):
        s = make_site(sim, cpus=4)
        j = Job(vo="atlas", group="g", user="u", cpus=2, duration_s=30.0)
        s.submit(j)
        sim.run()
        assert s.vo_cpu_seconds == {"atlas": pytest.approx(60.0)}

    def test_snapshot(self, sim):
        s = make_site(sim, cpus=4)
        s.submit(make_job(duration=100.0))
        snap = s.snapshot()
        assert snap == {"name": "s", "total_cpus": 4, "free_cpus": 3,
                        "queue_length": 0, "running_jobs": 1}


class TestFaultInjection:
    def test_fail_running_job_frees_cpus(self, sim):
        s = make_site(sim, cpus=2)
        j = make_job(cpus=2, duration=100.0)
        s.submit(j)
        sim.run(until=10.0)
        s.fail_running_job(j.jid)
        assert j.state == JobState.FAILED
        assert s.free_cpus == 2

    def test_fail_unknown_job_raises(self, sim):
        s = make_site(sim)
        with pytest.raises(KeyError):
            s.fail_running_job(999)

    def test_failure_unblocks_queue(self, sim):
        s = make_site(sim, cpus=1)
        j1 = make_job(duration=100.0)
        j2 = make_job(duration=5.0)
        s.submit(j1)
        s.submit(j2)
        sim.run(until=10.0)
        s.fail_running_job(j1.jid)
        assert j2.state == JobState.RUNNING


class TestUtilizationWindow:
    def test_until_clamps_the_live_tail(self, sim):
        # Regression: the live busy segment used to be integrated to
        # sim.now regardless of ``until``, so a fully-busy 2-CPU site
        # queried over [0, 10] at now=20 reported utilization 2.0.
        s = make_site(sim, cpus=2)
        s.submit(make_job(cpus=2, duration=100.0))
        sim.run(until=20.0)
        assert s.utilization(until=10.0) == pytest.approx(1.0)
        assert s.utilization(until=20.0) == pytest.approx(1.0)

    def test_repeated_queries_at_one_instant_agree(self, sim):
        # The query must never mutate the integral: asking twice at the
        # same timestamp returns the same answer.
        s = make_site(sim, cpus=2)
        s.submit(make_job(cpus=1, duration=50.0))
        sim.run(until=30.0)
        first = s.utilization()
        assert s.utilization() == pytest.approx(first)
        assert first == pytest.approx(30.0 / 60.0)

    def test_until_inside_last_segment_stays_bounded(self, sim):
        # ``until`` inside the last committed segment is answered with
        # the committed integral (per-segment history is not kept) but
        # can never exceed 1.0 the way the unclamped tail could.
        s = make_site(sim, cpus=2)
        s.submit(make_job(cpus=2, duration=15.0))
        sim.run(until=40.0)
        for until in (5.0, 12.0, 15.0, 40.0):
            assert 0.0 < s.utilization(until=until) <= 1.0 + 1e-12


class TestVectorizedDrain:
    def _run(self, vectorized):
        sim = Simulator()
        s = Site(sim, "s", [Cluster("c", 8)], vectorized=vectorized)
        started = []
        completed = []
        s.on_job_started.append(lambda j: started.append((sim.now, j.jid)))
        s.on_job_completed.append(lambda j: completed.append((sim.now, j.jid)))
        # A blocker pins the site busy so a deep FIFO backlog builds,
        # then its completion triggers one deep drain.
        s.submit(Job(vo="vo0", group="g0", user="u0", cpus=8,
                     duration_s=10.0, jid=1000))
        for i in range(40):
            s.submit(Job(vo="vo0", group="g0", user="u0",
                         cpus=1 + (i % 3), duration_s=5.0 + i, jid=i))
        sim.run()
        return started, completed, s.jobs_completed, s.utilization(
            until=200.0), s.vector_drains

    def test_matches_scalar_fifo_exactly(self):
        vec = self._run(vectorized=True)
        scalar = self._run(vectorized=False)
        assert vec[:4] == scalar[:4]
        assert vec[4] > 0 and scalar[4] == 0

    def test_equal_durations_share_one_completion_timer(self):
        sim = Simulator()
        s = Site(sim, "s", [Cluster("c", 16)], vectorized=True)
        s.submit(Job(vo="vo0", group="g0", user="u0", cpus=16,
                     duration_s=10.0, jid=2000))
        for i in range(16):
            s.submit(Job(vo="vo0", group="g0", user="u0", cpus=1,
                         duration_s=7.0, jid=2001 + i))
        sim.run(until=10.0)  # blocker done; the 16-job wave starts
        assert s.running_jobs == 16
        # One bucketed timer for the whole equal-duration wave (the
        # scalar path would hold 16 separate heap entries).
        assert len(sim._heap) == 1
        sim.run()
        assert s.jobs_completed == 17

    def test_backfill_keeps_scalar_pass(self, sim):
        s = Site(sim, "s", [Cluster("c", 4)], backfill=True, vectorized=True)
        for i in range(30):
            s.submit(make_job(cpus=2, duration=10.0))
        sim.run()
        assert s.vector_drains == 0
        assert s.jobs_completed == 30
