"""Tests for site policy enforcement points (S-PEPs)."""

import pytest

from repro.grid import Cluster, Job, JobState, Site, SitePolicyEnforcementPoint
from repro.sim import Simulator
from repro.usla import PolicyEngine, parse_policy


@pytest.fixture
def sim():
    return Simulator()


def make_governed_site(sim, cpus=10, policy_text="s:atlas=50%+"):
    site = Site(sim, "s", [Cluster("c", cpus)])
    spep = SitePolicyEnforcementPoint(site, PolicyEngine(
        parse_policy(policy_text)))
    return site, spep


def job(vo="atlas", cpus=1, duration=100.0):
    return Job(vo=vo, group=f"{vo}-g", user=f"{vo}-u", cpus=cpus,
               duration_s=duration)


class TestAdmission:
    def test_within_share_starts(self, sim):
        site, spep = make_governed_site(sim)
        j = job(cpus=4)
        site.submit(j)
        assert j.state == JobState.RUNNING
        assert spep.holds == 0

    def test_over_share_held(self, sim):
        site, spep = make_governed_site(sim)
        j1, j2 = job(cpus=5), job(cpus=2)
        site.submit(j1)   # exactly at the 50% cap
        site.submit(j2)   # would exceed it
        assert j1.state == JobState.RUNNING
        assert j2.state == JobState.DISPATCHED
        assert spep.holds == 1 and spep.held_jobs == 1

    def test_unknown_vo_opportunistic(self, sim):
        site, spep = make_governed_site(sim)
        j = job(vo="newvo", cpus=9)
        site.submit(j)
        assert j.state == JobState.RUNNING

    def test_held_job_released_when_share_frees(self, sim):
        site, spep = make_governed_site(sim)
        j1 = job(cpus=5, duration=50.0)
        j2 = job(cpus=3, duration=50.0)
        site.submit(j1)
        site.submit(j2)
        assert j2.state == JobState.DISPATCHED
        sim.run(until=60.0)   # j1 finished, share freed
        assert j2.state in (JobState.RUNNING, JobState.COMPLETED)
        assert spep.releases == 1

    def test_held_job_does_not_block_compliant_vo(self, sim):
        """Enforcement relaxes FIFO: a held job lets later jobs pass."""
        site, spep = make_governed_site(sim)
        blocker = job(vo="atlas", cpus=5, duration=1000.0)
        held = job(vo="atlas", cpus=3)
        other = job(vo="cms", cpus=2)
        site.submit(blocker)
        site.submit(held)
        site.submit(other)
        assert held.state == JobState.DISPATCHED
        assert other.state == JobState.RUNNING

    def test_vo_share_computation(self, sim):
        site, spep = make_governed_site(sim)
        site.submit(job(cpus=3))
        assert spep.vo_share("atlas") == pytest.approx(0.3)
        assert spep.vo_share("cms") == 0.0


class TestDetach:
    def test_detach_restores_fifo(self, sim):
        site, spep = make_governed_site(sim)
        spep.detach()
        j1, j2 = job(cpus=5), job(cpus=5)
        site.submit(j1)
        site.submit(j2)   # would be held under enforcement
        assert j2.state == JobState.RUNNING

    def test_enforcement_preserves_capacity_invariant(self, sim):
        site, spep = make_governed_site(sim, cpus=8,
                                        policy_text="s:atlas=50%+\n"
                                                    "s:cms=50%+")
        for vo in ("atlas", "cms"):
            for _ in range(6):
                site.submit(job(vo=vo, cpus=2, duration=30.0))
        assert site.busy_cpus <= site.total_cpus
        sim.run(until=500.0)
        assert site.jobs_completed == 12
        assert site.busy_cpus == 0
