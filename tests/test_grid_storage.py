"""Tests for site storage pools and storage USLAs."""

import pytest

from repro.core import LeastUsedSelector
from repro.euryale import (
    CondorGSubmitter,
    EuryalePlanner,
    FileSpec,
    PlannerJob,
    ReplicaCatalog,
)
from repro.grid import GridBuilder, Job, StorageManager, build_storage
from repro.net import ConstantLatency, Network
from repro.sim import RngRegistry, Simulator
from repro.usla import PolicyEngine, parse_policy, verify_usage


@pytest.fixture
def manager():
    policy = PolicyEngine(parse_policy("storage|s0:atlas=25%+"))
    return StorageManager(site="s0", capacity_gb=100.0, policy=policy)


class TestStorageManager:
    def test_capacity_accounting(self, manager):
        assert manager.allocate("cms", "f1", 30.0) is not None
        assert manager.used_gb == 30.0 and manager.free_gb == 70.0
        assert manager.vo_used_gb("cms") == 30.0

    def test_over_capacity_denied(self, manager):
        manager.allocate("cms", "big", 90.0)
        assert manager.allocate("cms", "more", 20.0) is None
        assert manager.denials == 1

    def test_storage_usla_enforced(self, manager):
        assert manager.allocate("atlas", "a1", 20.0) is not None
        # atlas is capped at 25% of 100 GB.
        assert manager.allocate("atlas", "a2", 10.0) is None
        assert manager.vo_fraction("atlas") == pytest.approx(0.20)

    def test_vo_without_rule_opportunistic(self, manager):
        assert manager.allocate("cms", "c1", 80.0) is not None

    def test_duplicate_lfn_idempotent(self, manager):
        a1 = manager.allocate("cms", "f1", 10.0)
        a2 = manager.allocate("cms", "f1", 10.0)
        assert a1 is a2
        assert manager.used_gb == 10.0

    def test_release(self, manager):
        manager.allocate("cms", "f1", 10.0)
        manager.release("f1")
        assert manager.used_gb == 0.0 and not manager.holds("f1")
        manager.release("f1")  # idempotent

    def test_usage_snapshot_feeds_verification(self, manager):
        manager.allocate("atlas", "a", 25.0)
        manager.allocate("cms", "c", 40.0)
        usage = {("s0", vo): frac
                 for vo, frac in manager.usage_snapshot().items()}
        report = verify_usage(parse_policy("storage|s0:atlas=25%+"), usage)
        assert report.compliant

    def test_validation(self):
        with pytest.raises(ValueError):
            StorageManager(site="s", capacity_gb=0.0)
        m = StorageManager(site="s", capacity_gb=1.0)
        with pytest.raises(ValueError):
            m.can_allocate("v", -1.0)


class TestBuildStorage:
    def test_sized_by_cpus(self):
        sim = Simulator()
        grid = GridBuilder(sim, RngRegistry(0).stream("g")).uniform(
            n_sites=3, cpus_per_site=10)
        pools = build_storage(grid, gb_per_cpu=2.0)
        assert set(pools) == set(grid.site_names)
        assert all(p.capacity_gb == 20.0 for p in pools.values())

    def test_validation(self):
        sim = Simulator()
        grid = GridBuilder(sim, RngRegistry(0).stream("g")).uniform(
            n_sites=1, cpus_per_site=1)
        with pytest.raises(ValueError):
            build_storage(grid, gb_per_cpu=0.0)


class TestPlannerStorageIntegration:
    def _env(self):
        sim = Simulator()
        rng = RngRegistry(4)
        net = Network(sim, ConstantLatency(0.05))
        grid = GridBuilder(sim, rng.stream("grid")).uniform(
            n_sites=3, cpus_per_site=8)
        return sim, rng, net, grid

    def _planner(self, sim, rng, net, grid, storage):
        return EuryalePlanner(
            sim, net, grid,
            submitter=CondorGSubmitter(sim, net, grid),
            catalog=ReplicaCatalog(),
            selector=LeastUsedSelector(rng.stream("sel")),
            rng=rng.stream("fb"), storage=storage)

    def test_staged_input_reserves_space(self):
        sim, rng, net, grid = self._env()
        storage = build_storage(grid, gb_per_cpu=10.0)
        planner = self._planner(sim, rng, net, grid, storage)
        pj = PlannerJob(job=Job(vo="atlas", group="g", user="u",
                                duration_s=10.0),
                        inputs=[FileSpec("data", size_mb=2048.0)])
        proc = sim.process(planner.run_job(pj))
        sim.run()
        assert proc.ok
        assert storage[pj.job.site].holds("data")
        assert storage[pj.job.site].used_gb == pytest.approx(2.0)

    def test_full_site_redirects_job(self):
        sim, rng, net, grid = self._env()
        storage = build_storage(grid, gb_per_cpu=1.0)  # 8 GB per site
        # Fill two of the three sites completely.
        names = grid.site_names
        storage[names[0]].allocate("other", "fill0", 8.0)
        storage[names[1]].allocate("other", "fill1", 8.0)
        planner = self._planner(sim, rng, net, grid, storage)
        pj = PlannerJob(job=Job(vo="atlas", group="g", user="u",
                                duration_s=10.0),
                        inputs=[FileSpec("data", size_mb=4096.0)])
        proc = sim.process(planner.run_job(pj))
        sim.run()
        assert proc.ok
        assert pj.job.site == names[2]  # the only site with room

    def test_no_site_with_room_abandons(self):
        sim, rng, net, grid = self._env()
        storage = build_storage(grid, gb_per_cpu=0.1)  # 0.8 GB per site
        planner = self._planner(sim, rng, net, grid, storage)
        pj = PlannerJob(job=Job(vo="atlas", group="g", user="u",
                                duration_s=10.0),
                        inputs=[FileSpec("huge", size_mb=10240.0)])
        proc = sim.process(planner.run_job(pj))
        sim.run()
        assert proc.ok is False
        assert planner.storage_rejections > 0
