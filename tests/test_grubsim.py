"""Tests for the GRUB-SIM sizing simulator."""

import numpy as np
import pytest

from repro.grubsim import DPPerformanceModel, GrubSim, GrubSimResult
from repro.net import GT3_PROFILE, GT4_PROFILE
from repro.workloads import TraceRecorder


@pytest.fixture
def model():
    return DPPerformanceModel(capacity_qps=2.0, unloaded_response_s=10.0,
                              target_response_s=15.0, headroom=0.85)


def make_trace(n_clients, t_end=600.0, queries_per_client=5):
    """A synthetic trace: each client issues spaced queries."""
    trace = TraceRecorder()
    for c in range(n_clients):
        for i in range(queries_per_client):
            sent = 1.0 + i * (t_end - 2.0) / queries_per_client + c * 0.01
            trace.record_query(sent, sent + 5.0, timed_out=False,
                               client=f"c{c}", decision_point="dp0")
    return trace


class TestModel:
    def test_demand_scaling(self, model):
        # 30 clients at 15 s effective response -> 2 q/s.
        assert model.demand_qps(30) == pytest.approx(2.0)

    def test_unloaded_floor(self):
        m = DPPerformanceModel(capacity_qps=2.0, unloaded_response_s=20.0,
                               target_response_s=15.0)
        # Response can't go below 20 s, so demand is N/20.
        assert m.demand_qps(40) == pytest.approx(2.0)

    def test_required_dps(self, model):
        assert model.required_dps(0) == 1
        # demand 8 q/s / usable 1.7 -> 5 DPs.
        assert model.required_dps(120) == 5

    def test_from_profile_gt3_vs_gt4(self):
        m3 = DPPerformanceModel.from_profile(GT3_PROFILE)
        m4 = DPPerformanceModel.from_profile(GT4_PROFILE)
        assert m3.capacity_qps > m4.capacity_qps
        assert m3.unloaded_response_s == pytest.approx(
            6.0 + 4 * 0.12 + 2.7 + 0.5, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            DPPerformanceModel(capacity_qps=0.0, unloaded_response_s=1.0)
        with pytest.raises(ValueError):
            DPPerformanceModel(capacity_qps=1.0, unloaded_response_s=1.0,
                               headroom=0.0)
        with pytest.raises(ValueError):
            DPPerformanceModel(1.0, 1.0).demand_qps(-1)


class TestGrubSim:
    def test_empty_trace(self, model):
        result = GrubSim(model).replay(TraceRecorder(), initial_dps=2)
        assert result.final_dps == 2 and result.additional_dps == 0

    def test_small_fleet_needs_one_dp(self, model):
        result = GrubSim(model).replay(make_trace(5))
        assert result.final_dps == 1
        assert result.overloads == []

    def test_large_fleet_grows_dps(self, model):
        result = GrubSim(model).replay(make_trace(120), initial_dps=1,
                                       name="gt3")
        assert result.final_dps == 5
        assert result.additional_dps == 4
        assert result.overloads  # saturation identified
        assert result.peak_required == 5

    def test_grow_only_keeps_peak(self, model):
        """Default mode never scales down after the ramp ends."""
        trace = make_trace(120, t_end=300.0)
        # Add a quiet tail: one client active late.
        trace.record_query(500.0, 505.0, False, "late", "dp0")
        result = GrubSim(model).replay(trace)
        assert result.final_dps == 5

    def test_shrink_mode(self, model):
        trace = make_trace(120, t_end=300.0)
        trace.record_query(500.0, 505.0, False, "late", "dp0")
        result = GrubSim(model, grow_only=False).replay(trace)
        assert result.final_dps == 1
        assert result.peak_required == 5

    def test_active_clients_reconstruction(self, model):
        trace = make_trace(10, t_end=600.0)
        edges = np.arange(0.0, 660.0, 60.0)
        active = GrubSim.active_clients_per_window(trace, edges)
        assert active.max() == 10

    def test_summary_renders(self, model):
        result = GrubSim(model).replay(make_trace(120), name="gt3-1dp")
        text = result.summary()
        assert "gt3-1dp" in text and "Additional" in text

    def test_validation(self, model):
        with pytest.raises(ValueError):
            GrubSim(model, window_s=0.0)
        with pytest.raises(ValueError):
            GrubSim(model).replay(TraceRecorder(), initial_dps=0)
