"""Cross-module invariants over full experiment runs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import smoke_config, run_experiment


@pytest.fixture(scope="module")
def result():
    return run_experiment(smoke_config(n_clients=16, duration_s=400.0))


class TestJobConservation:
    def test_every_dispatched_job_has_consistent_timestamps(self, result):
        j = result.trace.job_arrays()
        dispatched = ~np.isnan(j["dispatched_at"])
        started = ~np.isnan(j["started_at"])
        completed = ~np.isnan(j["completed_at"])
        # created <= dispatched <= started <= completed where defined.
        assert np.all(j["created_at"][dispatched]
                      <= j["dispatched_at"][dispatched] + 1e-9)
        assert np.all(j["dispatched_at"][started]
                      <= j["started_at"][started] + 1e-9)
        both = started & completed
        assert np.all(j["started_at"][both] <= j["completed_at"][both] + 1e-9)
        # Started implies dispatched; completed implies started.
        assert np.all(dispatched[started])
        assert np.all(started[completed])

    def test_client_job_counts_add_up(self, result):
        per_client = sum(len(c.jobs) for c in result.clients)
        assert per_client == result.trace.n_jobs
        # A busy client's current job may or may not have been counted
        # yet (it is counted at its dispatch, which can precede the
        # report ack that frees the channel).
        processed = sum(c.n_handled + c.n_fallback_timeout
                        for c in result.clients)
        in_flight = sum(1 for c in result.clients if c.busy)
        assert processed <= result.trace.n_jobs <= processed + in_flight

    def test_workload_conservation(self, result):
        """Materialized + backlogged = offered, per client."""
        for c in result.clients:
            assert len(c.jobs) + c.backlog_len == len(c.workload)


class TestSiteAccounting:
    def test_free_cpu_cache_matches_sites(self, result):
        grid = result.grid
        cached = grid.free_cpu_vector()
        actual = np.array([s.free_cpus for s in grid.sites.values()])
        assert np.array_equal(cached, actual)

    def test_busy_cpus_bounded(self, result):
        for site in result.grid.sites.values():
            assert 0 <= site.busy_cpus <= site.total_cpus

    def test_site_dispatch_counts_match_trace(self, result):
        j = result.trace.job_arrays()
        dispatched = ~np.isnan(j["dispatched_at"])
        per_trace = int(dispatched.sum())
        per_sites = sum(s.jobs_dispatched for s in result.grid.sites.values())
        # Sites may have also rejected oversized jobs (counted in trace
        # as dispatched-then-failed) — they are counted consistently.
        assert per_sites <= per_trace
        assert per_trace - per_sites == int(j["failed"].sum())


class TestBrokerAccounting:
    def test_query_count_matches_clients(self, result):
        # Queries are recorded when their response arrives (even for
        # timed-out operations), so at most one per client — the one in
        # flight at the end of the run — can be missing.
        processed = sum(c.n_handled + c.n_fallback_timeout
                        for c in result.clients)
        busy = sum(1 for c in result.clients if c.busy)
        assert result.trace.n_queries >= processed - busy
        assert result.trace.n_queries <= processed + busy

    def test_handled_jobs_have_response_times(self, result):
        for c in result.clients:
            jobs = c.jobs[:-1] if c.busy else c.jobs  # last may be in flight
            for j in jobs:
                if j.handled_by_gruber:
                    assert j.query_response_s is not None
                    assert j.query_response_s > 0

    def test_dp_views_never_negative(self, result):
        for dp in result.deployment.decision_points.values():
            free = dp.engine.view.free_map()
            assert all(0 <= v <= dp.engine.view.capacities[s]
                       for s, v in free.items())


class TestMetricBounds:
    def test_all_metrics_in_range(self, result):
        for cat in ("handled", "not_handled", "all"):
            assert 0.0 <= result.utilization(cat) <= 1.0
            assert result.qtime(cat) >= 0.0
            assert result.normalized_qtime(cat) >= 0.0
        assert 0.0 <= result.accuracy("handled") <= 1.0

    def test_category_utilization_decomposes(self, result):
        u_all = result.utilization("all")
        u_h = result.utilization("handled")
        u_nh = result.utilization("not_handled")
        assert u_h + u_nh == pytest.approx(u_all, rel=1e-6, abs=1e-9)


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=5, deadline=None)
def test_invariants_hold_across_seeds(seed):
    """Short randomized runs never violate the structural invariants."""
    res = run_experiment(smoke_config(n_clients=6, duration_s=120.0,
                                      seed=seed))
    j = res.trace.job_arrays()
    started = ~np.isnan(j["started_at"])
    assert np.all(j["dispatched_at"][started] <= j["started_at"][started])
    assert 0.0 <= res.utilization("all") <= 1.0
    for site in res.grid.sites.values():
        assert 0 <= site.busy_cpus <= site.total_cpus
