"""Tests for the five paper metrics and the time-series helpers."""

import numpy as np
import pytest

from repro.metrics import (
    SummaryStats,
    accuracy,
    concurrency_series,
    format_table,
    normalized_qtime,
    qtime,
    throughput,
    utilization,
    windowed_mean,
    windowed_rate,
)

NAN = float("nan")


class TestThroughput:
    def test_basic(self):
        done = np.array([1.0, 2.0, 3.0, 9.0])
        assert throughput(done, 0.0, 10.0) == pytest.approx(0.4)

    def test_nan_excluded(self):
        done = np.array([1.0, NAN, 3.0])
        assert throughput(done, 0.0, 10.0) == pytest.approx(0.2)

    def test_window_filter(self):
        done = np.array([1.0, 5.0, 20.0])
        assert throughput(done, 0.0, 10.0) == pytest.approx(0.2)

    def test_empty(self):
        assert throughput(np.array([]), 0.0, 10.0) == 0.0
        assert throughput(np.array([NAN]), 0.0, 0.0) == 0.0


class TestQTime:
    def test_mean(self):
        q = np.array([2.0, 4.0, NAN])
        assert qtime(q) == pytest.approx(3.0)

    def test_mask(self):
        q = np.array([2.0, 4.0, 100.0])
        mask = np.array([True, True, False])
        assert qtime(q, mask) == pytest.approx(3.0)

    def test_empty(self):
        assert qtime(np.array([NAN, NAN])) == 0.0

    def test_normalized(self):
        q = np.array([2.0, 4.0])
        assert normalized_qtime(q, n_requests=10) == pytest.approx(0.3)
        assert normalized_qtime(q, n_requests=0) == 0.0


class TestUtilization:
    def test_full(self):
        s, c = np.array([0.0]), np.array([10.0])
        p = np.array([4])
        assert utilization(s, c, p, total_cpus=4, t_end=10.0) == pytest.approx(1.0)

    def test_partial(self):
        s, c, p = np.array([0.0, 5.0]), np.array([5.0, 10.0]), np.array([1, 1])
        assert utilization(s, c, p, total_cpus=2, t_end=10.0) == pytest.approx(0.5)

    def test_running_job_clipped_to_window(self):
        s, c, p = np.array([5.0]), np.array([NAN]), np.array([2])
        # Runs from 5 to window end 10 on 2 cpus => 10 cpu-s of 40.
        assert utilization(s, c, p, total_cpus=4, t_end=10.0) == pytest.approx(0.25)

    def test_never_started_contributes_zero(self):
        s, c, p = np.array([NAN]), np.array([NAN]), np.array([4])
        assert utilization(s, c, p, total_cpus=4, t_end=10.0) == 0.0

    def test_mask(self):
        s = np.array([0.0, 0.0])
        c = np.array([10.0, 10.0])
        p = np.array([2, 2])
        m = np.array([True, False])
        assert utilization(s, c, p, 4, 10.0, mask=m) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            utilization(np.array([]), np.array([]), np.array([]), 0, 10.0)

    def test_job_spanning_window_start(self):
        s, c, p = np.array([-5.0]), np.array([5.0]), np.array([1])
        got = utilization(s, c, p, total_cpus=1, t_end=10.0, t_start=0.0)
        assert got == pytest.approx(0.5)


class TestAccuracy:
    def test_mean_ignoring_nan(self):
        a = np.array([1.0, 0.5, NAN])
        assert accuracy(a) == pytest.approx(0.75)

    def test_mask(self):
        a = np.array([1.0, 0.0])
        assert accuracy(a, np.array([True, False])) == 1.0

    def test_empty(self):
        assert accuracy(np.array([])) == 0.0


class TestTimeseries:
    def test_windowed_rate(self):
        t = np.array([0.5, 1.5, 1.7, 9.0])
        centers, rates = windowed_rate(t, 0.0, 10.0, window_s=1.0)
        assert len(centers) == 10
        assert rates[0] == 1.0 and rates[1] == 2.0 and rates[9] == 1.0

    def test_windowed_rate_ignores_nan(self):
        t = np.array([0.5, NAN])
        _, rates = windowed_rate(t, 0.0, 1.0, window_s=1.0)
        assert rates[0] == 1.0

    def test_windowed_mean(self):
        t = np.array([0.5, 0.6, 1.5])
        v = np.array([2.0, 4.0, 10.0])
        _, means = windowed_mean(t, v, 0.0, 2.0, window_s=1.0)
        assert means[0] == pytest.approx(3.0)
        assert means[1] == pytest.approx(10.0)

    def test_windowed_mean_empty_window_nan(self):
        t = np.array([0.5])
        v = np.array([1.0])
        _, means = windowed_mean(t, v, 0.0, 2.0, window_s=1.0)
        assert np.isnan(means[1])

    def test_concurrency(self):
        starts = np.array([0.0, 2.0])
        ends = np.array([3.0, NAN])  # second active to the end
        _, active = concurrency_series(starts, ends, 0.0, 6.0, window_s=1.0)
        assert active.tolist() == [1, 1, 2, 1, 1, 1]

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            windowed_rate(np.array([]), 0.0, 10.0, window_s=0.0)
        with pytest.raises(ValueError):
            windowed_rate(np.array([]), 10.0, 0.0, window_s=1.0)


class TestReport:
    def test_summary_stats(self):
        stats = SummaryStats.from_array(np.array([1.0, 2.0, 3.0, NAN]))
        assert stats.minimum == 1.0 and stats.maximum == 3.0
        assert stats.median == 2.0 and stats.average == 2.0
        assert stats.peak == 3.0

    def test_summary_stats_custom_peak(self):
        stats = SummaryStats.from_array(np.array([1.0, 2.0]), peak=7.5)
        assert stats.peak == 7.5

    def test_summary_stats_empty(self):
        stats = SummaryStats.from_array(np.array([]))
        assert stats.row() == [0.0] * 6

    def test_format_table(self):
        text = format_table(["a", "b"], [[1.0, "x"], [float("nan"), 2000.0]])
        assert "1.00" in text and "x" in text
        assert "-" in text and "2,000" in text

    def test_format_table_validates(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])
