"""Tests for the ASCII figure renderer."""

import numpy as np

from repro.experiments import smoke_config, run_experiment
from repro.metrics import render_diperf_figure, render_series, sparkline

NAN = float("nan")


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_renders_mid_block(self):
        s = sparkline([5.0, 5.0, 5.0])
        assert len(s) == 3 and len(set(s)) == 1

    def test_monotone_series_monotone_blocks(self):
        s = sparkline(list(range(9)))
        assert list(s) == sorted(s)
        assert s[0] != s[-1]

    def test_nan_renders_blank(self):
        s = sparkline([1.0, NAN, 2.0])
        assert s[1] == " "

    def test_resampling_caps_width(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40

    def test_all_nan(self):
        s = sparkline([NAN, NAN])
        assert s == "  "


class TestRenderSeries:
    def test_annotations(self):
        line = render_series("load", np.arange(5), [1.0, 2.0, 3.0, 4.0, 5.0])
        assert "load" in line and "min=1.00" in line and "max=5.00" in line

    def test_empty_series(self):
        line = render_series("x", np.array([]), np.array([]))
        assert "min=0.00" in line


class TestRenderFigure:
    def test_full_figure(self):
        result = run_experiment(smoke_config(n_clients=6, duration_s=200.0))
        text = render_diperf_figure(result.diperf(window_s=50.0))
        lines = text.splitlines()
        assert len(lines) == 4
        assert "load (clients)" in lines[1]
        assert "response (s)" in lines[2]
        assert "throughput (q/s)" in lines[3]
