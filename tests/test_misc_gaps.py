"""Gap-filling tests for paths not covered by the per-module suites."""

import numpy as np
import pytest

from repro.core import DecisionPoint, DIGruberDeployment, GruberClient, LeastUsedSelector
from repro.grid import GridBuilder
from repro.net import ConstantLatency, GT3_PROFILE, Network
from repro.sim import RngRegistry, Simulator
from repro.workloads import JobModel, TraceRecorder, WorkloadGenerator

from tests.test_core_client import SLOW_PROFILE


class TestKernelJitter:
    def test_every_with_jitter_desyncs(self):
        sim = Simulator()
        rng = RngRegistry(0).stream("jit")
        ticks = []
        sim.every(10.0, lambda: ticks.append(sim.now), jitter=2.0, rng=rng)
        sim.run(until=100.0)
        gaps = np.diff(ticks)
        assert np.all(gaps >= 10.0 - 1e-9)
        assert np.all(gaps <= 12.0 + 1e-9)
        assert len(set(np.round(gaps, 6))) > 1  # actually jittered

    def test_any_of_with_pretriggered_event(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("early")
        cond = sim.any_of([ev, sim.timeout(5.0)])
        sim.run(until=1.0)
        assert cond.triggered and ev in cond.value


class TestDeploymentTopologies:
    @pytest.mark.parametrize("kind,expected_degree", [
        ("mesh", 3), ("ring", 2), ("star", None), ("line", None)])
    def test_neighbor_wiring(self, kind, expected_degree):
        sim = Simulator()
        rng = RngRegistry(1)
        net = Network(sim, ConstantLatency(0.01))
        grid = GridBuilder(sim, rng.stream("g")).uniform(n_sites=3,
                                                         cpus_per_site=8)
        dep = DIGruberDeployment(sim, net, grid, GT3_PROFILE, rng,
                                 n_decision_points=4, topology_kind=kind)
        degrees = sorted(len(dp.neighbors)
                         for dp in dep.decision_points.values())
        if kind == "mesh":
            assert degrees == [3, 3, 3, 3]
        elif kind == "ring":
            assert degrees == [2, 2, 2, 2]
        elif kind == "star":
            assert degrees == [1, 1, 1, 3]
        else:  # line
            assert degrees == [1, 1, 2, 2]

    def test_ring_deployment_floods_eventually(self):
        sim = Simulator()
        rng = RngRegistry(2)
        net = Network(sim, ConstantLatency(0.01))
        grid = GridBuilder(sim, rng.stream("g")).uniform(n_sites=3,
                                                         cpus_per_site=8)
        dep = DIGruberDeployment(sim, net, grid, GT3_PROFILE, rng,
                                 n_decision_points=4, topology_kind="ring",
                                 sync_interval_s=20.0,
                                 monitor_interval_s=10_000.0)
        dep.start()
        sim.run(until=1.0)
        target = grid.site_names[0]
        dep.dp("dp0").engine.record_local_dispatch(target, "v", 4, sim.now)
        sim.run(until=120.0)  # several hops around the ring
        for dp in dep.decision_points.values():
            assert dp.engine.view.estimated_busy(target) == 4.0


class TestOnePhaseTimeout:
    def test_one_phase_timeout_falls_back(self):
        sim = Simulator()
        rng = RngRegistry(5)
        net = Network(sim, ConstantLatency(0.02))
        grid = GridBuilder(sim, rng.stream("g")).uniform(n_sites=4,
                                                         cpus_per_site=8)
        dp = DecisionPoint(sim, net, "dp0", grid, SLOW_PROFILE,
                           rng.stream("dp"), monitor_interval_s=600.0)
        dp.start(neighbors=[])
        gen = WorkloadGenerator(grid.vos,
                                JobModel(duration_mean_s=30.0,
                                         min_duration_s=5.0,
                                         cpu_choices=(1,), cpu_weights=(1.0,)),
                                rng.stream("wl"))
        trace = TraceRecorder()
        client = GruberClient(
            sim, net, "h0", "dp0", grid,
            gen.host_workload("h0", duration_s=10.0, interarrival_s=10.0),
            selector=LeastUsedSelector(rng.stream("sel")),
            profile=SLOW_PROFILE, rng=rng.stream("cl"), trace=trace,
            timeout_s=5.0, state_response_kb=0.0, one_phase=True)
        client.start()
        sim.run(until=200.0)
        assert client.n_fallback_timeout == 1
        assert client.jobs[0].site is not None
        assert not client.jobs[0].handled_by_gruber


class TestTransportAccounting:
    def test_kb_accounting_includes_both_directions(self):
        sim = Simulator()
        net = Network(sim, ConstantLatency(0.01))
        from repro.net import Endpoint
        Endpoint(net, "c")
        srv = Endpoint(net, "s")
        srv.register_handler("op", lambda p, s: "r")
        net.rpc("c", "s", "op", size_kb=2.0, response_size_kb=5.0)
        sim.run()
        assert net.stats.kb == pytest.approx(7.0)
        assert net.stats.messages == 2

    def test_failed_handler_response_carries_no_payload_kb(self):
        sim = Simulator()
        net = Network(sim, ConstantLatency(0.01))
        from repro.net import Endpoint
        Endpoint(net, "c")
        srv = Endpoint(net, "s")
        srv.register_handler("boom",
                             lambda p, s: (_ for _ in ()).throw(ValueError()))
        net.rpc("c", "s", "boom", size_kb=1.0, response_size_kb=100.0)
        sim.run()
        assert net.stats.kb == pytest.approx(1.0)


class TestEngineMisc:
    def test_utilization_view_empty_grid(self):
        from repro.core import GruberEngine
        engine = GruberEngine("e", {"s": 10})
        assert engine.utilization_view() == {"s": 0.0}

    def test_availabilities_counts_queries(self):
        from repro.core import GruberEngine
        engine = GruberEngine("e", {"s": 10})
        for _ in range(5):
            engine.availabilities()
        assert engine.queries_served == 5
