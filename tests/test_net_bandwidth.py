"""Tests for the processor-shared bandwidth pool and network USLAs."""

import pytest

from repro.net.bandwidth import BandwidthPool
from repro.sim import Simulator
from repro.usla import PolicyEngine, parse_policy


@pytest.fixture
def sim():
    return Simulator()


class TestProcessorSharing:
    def test_single_transfer_full_rate(self, sim):
        pool = BandwidthPool(sim, "s0", capacity_mb_s=10.0)
        done = pool.transfer("atlas", 100.0)
        sim.run()
        assert done.ok and sim.now == pytest.approx(10.0)

    def test_two_transfers_share_evenly(self, sim):
        pool = BandwidthPool(sim, "s0", capacity_mb_s=10.0)
        a = pool.transfer("atlas", 100.0)
        b = pool.transfer("cms", 100.0)
        sim.run()
        # Both share 5 MB/s until both finish at t=20.
        assert a.value == pytest.approx(20.0)
        assert b.value == pytest.approx(20.0)

    def test_short_transfer_releases_bandwidth(self, sim):
        pool = BandwidthPool(sim, "s0", capacity_mb_s=10.0)
        long = pool.transfer("atlas", 150.0)
        short = pool.transfer("cms", 50.0)
        sim.run()
        # Shared 5 MB/s: short done at t=10 (50MB). Long has 100MB left,
        # then runs at 10 MB/s -> finishes at t=20.
        assert short.value == pytest.approx(10.0)
        assert long.value == pytest.approx(20.0)

    def test_staggered_arrival(self, sim):
        pool = BandwidthPool(sim, "s0", capacity_mb_s=10.0)
        first = pool.transfer("atlas", 100.0)
        sim.schedule(5.0, lambda: pool.transfer("cms", 25.0))
        sim.run()
        # First runs alone 0-5 (50MB), shares 5-10 (25MB), alone after
        # cms finishes at t=10; 25MB left at 10MB/s -> t=12.5.
        assert first.value == pytest.approx(12.5)

    def test_records_effective_rate(self, sim):
        pool = BandwidthPool(sim, "s0", capacity_mb_s=8.0)
        pool.transfer("atlas", 80.0)
        sim.run()
        rec = pool.records[0]
        assert rec.effective_mb_s == pytest.approx(8.0)

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            BandwidthPool(sim, "s", capacity_mb_s=0.0)
        pool = BandwidthPool(sim, "s", capacity_mb_s=1.0)
        with pytest.raises(ValueError):
            pool.transfer("v", 0.0)


class TestNetworkUsla:
    @pytest.fixture
    def pool(self, sim):
        policy = PolicyEngine(parse_policy("network|s0:atlas=50%+"))
        return BandwidthPool(sim, "s0", capacity_mb_s=10.0, policy=policy)

    def test_capped_vo_denied_when_over_share(self, sim, pool):
        assert pool.transfer("atlas", 10.0).ok is not False
        assert pool.transfer("cms", 10.0).ok is not False
        # atlas holds 1 of 2 slots; a second atlas transfer would make
        # it 2 of 3 (67% > 50%): denied.
        denied = pool.transfer("atlas", 10.0)
        assert denied.ok is False and isinstance(denied.value, PermissionError)
        assert pool.denials == 1

    def test_uncapped_vo_unrestricted(self, sim, pool):
        for _ in range(5):
            assert pool.transfer("cms", 1.0).ok is not False

    def test_share_frees_after_completion(self, sim, pool):
        pool.transfer("atlas", 10.0)
        pool.transfer("cms", 200.0)
        sim.run(until=50.0)  # atlas transfer long done
        again = pool.transfer("atlas", 1.0)
        assert again.ok is not False

    def test_usage_snapshot(self, sim, pool):
        pool.transfer("atlas", 30.0)
        pool.transfer("cms", 70.0)
        sim.run()
        snap = pool.usage_snapshot()
        assert snap["atlas"] == pytest.approx(0.3)
        assert snap["cms"] == pytest.approx(0.7)

    def test_empty_snapshot(self, sim, pool):
        assert pool.usage_snapshot() == {}
