"""Tests for the GT3/GT4 service-container model."""

import pytest

from repro.net import GT3_PROFILE, GT4_PROFILE, ContainerProfile, ServiceContainer
from repro.sim import RngRegistry, Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def rng():
    return RngRegistry(0).stream("container")


class TestProfiles:
    def test_gt4_slower_than_gt3(self):
        assert GT4_PROFILE.query_service_s > GT3_PROFILE.query_service_s
        assert GT4_PROFILE.query_capacity_qps < GT3_PROFILE.query_capacity_qps

    def test_gt3_capacity_near_two_qps(self):
        assert 1.8 <= GT3_PROFILE.query_capacity_qps <= 2.2

    def test_gt4_capacity_just_above_one_qps(self):
        assert 1.0 <= GT4_PROFILE.query_capacity_qps <= 1.4

    def test_instance_creation_much_cheaper_than_query(self):
        assert GT3_PROFILE.instance_capacity_qps > 5 * GT3_PROFILE.query_capacity_qps

    def test_validation(self):
        with pytest.raises(ValueError):
            ContainerProfile("bad", -1, 0.1, 1, 1, 0, 0.1, 1, 1, 0)
        with pytest.raises(ValueError):
            ContainerProfile("bad", 0.1, 0.1, 0, 1, 0, 0.1, 1, 1, 0)


class TestServiceContainer:
    def test_query_consumes_roughly_mean_service_time(self, sim, rng):
        c = ServiceContainer(sim, GT3_PROFILE, rng)
        for _ in range(200):
            sim.process(c.service_query())
        sim.run()
        # 200 sequential queries at ~0.5 s each (concurrency 1).
        assert 70 < sim.now < 140
        assert c.completed_ops == 200

    def test_throughput_matches_capacity(self, sim, rng):
        c = ServiceContainer(sim, GT3_PROFILE, rng)
        n = 300
        for _ in range(n):
            sim.process(c.service_query())
            sim.process(c.service_report())
        sim.run()
        achieved = n / sim.now  # full brokering ops (query + report) per second
        assert achieved == pytest.approx(GT3_PROFILE.query_capacity_qps, rel=0.1)

    def test_extra_service_time(self, sim, rng):
        profile = ContainerProfile("flat", 1.0, 0.0, 1, 1, 0.0, 0.1, 1, 1, 0.0, sigma=0.0)
        c = ServiceContainer(sim, profile, rng)
        sim.process(c.service_query(extra_s=2.0))
        sim.run()
        assert sim.now == pytest.approx(3.0)

    def test_instance_creation_concurrency(self, sim, rng):
        profile = ContainerProfile("flat", 1.0, 0.0, 1, 1, 0.0, 1.0, 2, 1, 0.0, sigma=0.0)
        c = ServiceContainer(sim, profile, rng)
        for _ in range(4):
            sim.process(c.service_instance_creation())
        sim.run()
        assert sim.now == pytest.approx(2.0)  # 4 ops, 2 at a time, 1 s each

    def test_ops_in_window(self, sim, rng):
        profile = ContainerProfile("flat", 1.0, 0.0, 1, 1, 0.0, 0.1, 1, 1, 0.0, sigma=0.0)
        c = ServiceContainer(sim, profile, rng)
        for _ in range(10):
            sim.process(c.service_query())
        sim.run()  # ops complete at t=1..10
        assert c.ops_in_window(3.5) == 4  # t in {7,8,9,10}
        assert c.ops_in_window(100.0) == 10

    def test_queue_introspection(self, sim, rng):
        c = ServiceContainer(sim, GT3_PROFILE, rng)
        for _ in range(5):
            sim.process(c.service_query())
        sim.run(until=0.01)
        assert c.in_service == 1
        assert c.queue_len == 4

    def test_client_overhead_draws_positive(self, sim, rng):
        c = ServiceContainer(sim, GT3_PROFILE, rng)
        draws = [c.draw_client_overhead(rng) for _ in range(50)]
        assert all(d > 0 for d in draws)
        mean = sum(draws) / len(draws)
        assert mean == pytest.approx(GT3_PROFILE.client_overhead_s, rel=0.35)


class TestQueueBoundTightening:
    def test_tighten_sheds_newest_excess_waiters(self, sim, rng):
        # Regression: lowering the bound mid-run used to leave requests
        # already queued beyond the new bound waiting forever (admission
        # only checks on arrival) — the autoscale actuator's tightened
        # bound under-shed until the next arrival.
        from repro.net import OverloadShed
        c = ServiceContainer(sim, GT3_PROFILE, rng, max_queue=10)
        procs = [sim.process(c.service_query()) for _ in range(6)]
        sim.run(until=0.0)
        assert c.in_service == 1 and c.queue_len == 5
        c.set_queue_bound(2)
        assert c.queue_len == 2
        assert c.shed_ops == 3
        sim.run()
        # Survivors (the request in service + the two oldest waiters)
        # complete; the three newest waiters failed with the shed error.
        assert [p.ok for p in procs] == [True] * 3 + [False] * 3
        assert all(isinstance(p.value, OverloadShed) for p in procs[3:])
        assert c.completed_ops == 3

    def test_loosen_and_clear_shed_nothing(self, sim, rng):
        c = ServiceContainer(sim, GT3_PROFILE, rng, max_queue=3)
        procs = [sim.process(c.service_query()) for _ in range(4)]
        sim.run(until=0.0)
        assert c.queue_len == 3
        c.set_queue_bound(8)   # loosening keeps every waiter
        assert c.queue_len == 3 and c.shed_ops == 0
        c.set_queue_bound(None)  # unbounded keeps every waiter
        assert c.queue_len == 3 and c.shed_ops == 0
        sim.run()
        assert all(p.ok for p in procs)

    def test_tighten_to_current_depth_is_a_noop(self, sim, rng):
        c = ServiceContainer(sim, GT3_PROFILE, rng)
        sim.process(c.service_query())
        sim.process(c.service_query())
        sim.run(until=0.0)
        c.set_queue_bound(1)  # queue_len == 1 == bound: nothing to shed
        assert c.shed_ops == 0
        sim.run()
        assert c.completed_ops == 2
