"""Tests for latency models."""

import numpy as np
import pytest

from repro.net import ConstantLatency, LanLatency, PairwiseWanLatency, UniformLatency
from repro.sim import RngRegistry


class TestConstantLatency:
    def test_sample(self):
        assert ConstantLatency(0.05).sample("a", "b") == 0.05

    def test_rtt_is_double(self):
        assert ConstantLatency(0.05).rtt("a", "b") == pytest.approx(0.10)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)


class TestUniformLatency:
    def test_within_bounds(self):
        rng = RngRegistry(0).stream("t")
        model = UniformLatency(0.01, 0.02, rng)
        samples = [model.sample("a", "b") for _ in range(100)]
        assert all(0.01 <= s <= 0.02 for s in samples)

    def test_bad_bounds_rejected(self):
        rng = RngRegistry(0).stream("t")
        with pytest.raises(ValueError):
            UniformLatency(0.05, 0.01, rng)
        with pytest.raises(ValueError):
            UniformLatency(-0.1, 0.01, rng)


class TestLanLatency:
    def test_sub_millisecond(self):
        assert LanLatency().sample("a", "b") < 0.001


class TestPairwiseWanLatency:
    def test_base_latency_stable_per_pair(self):
        model = PairwiseWanLatency(RngRegistry(1).stream("wan"))
        assert model.base_latency("a", "b") == model.base_latency("a", "b")

    def test_base_latency_symmetric(self):
        model = PairwiseWanLatency(RngRegistry(1).stream("wan"))
        assert model.base_latency("a", "b") == model.base_latency("b", "a")

    def test_self_latency_zero(self):
        model = PairwiseWanLatency(RngRegistry(1).stream("wan"))
        assert model.sample("a", "a") == 0.0

    def test_pairs_differ(self):
        model = PairwiseWanLatency(RngRegistry(1).stream("wan"))
        bases = {model.base_latency("a", f"n{i}") for i in range(20)}
        assert len(bases) > 10  # lognormal diversity

    def test_jitter_varies_per_message(self):
        model = PairwiseWanLatency(RngRegistry(1).stream("wan"))
        samples = {model.sample("a", "b") for _ in range(20)}
        assert len(samples) > 10

    def test_median_scale(self):
        """Sampled latencies have roughly the configured median."""
        model = PairwiseWanLatency(RngRegistry(2).stream("wan"),
                                   median_ms=60.0, sigma=0.6)
        samples = np.array([model.sample(f"x{i}", f"y{i}") for i in range(2000)])
        median = np.median(samples)
        assert 0.04 < median < 0.09  # ~60 ms within lognormal tolerance

    def test_parameter_validation(self):
        rng = RngRegistry(0).stream("wan")
        with pytest.raises(ValueError):
            PairwiseWanLatency(rng, median_ms=0.0)
        with pytest.raises(ValueError):
            PairwiseWanLatency(rng, sigma=-1.0)

    def test_all_samples_positive(self):
        model = PairwiseWanLatency(RngRegistry(3).stream("wan"))
        assert all(model.sample("a", f"b{i}") > 0 for i in range(100))
