"""Tests for lossy-WAN behavior (message drops)."""

import pytest

from repro.experiments import smoke_config, run_experiment
from repro.net import ConstantLatency, Endpoint, Network
from repro.sim import RngRegistry, Simulator


@pytest.fixture
def sim():
    return Simulator()


def lossy_net(sim, rate, seed=0):
    return Network(sim, ConstantLatency(0.01), loss_rate=rate,
                   loss_rng=RngRegistry(seed).stream("loss"))


class TestLossMechanics:
    def test_validation(self, sim):
        with pytest.raises(ValueError):
            Network(sim, ConstantLatency(0.01), loss_rate=1.0,
                    loss_rng=RngRegistry(0).stream("l"))
        with pytest.raises(ValueError):
            Network(sim, ConstantLatency(0.01), loss_rate=0.5)  # no rng

    def test_zero_loss_never_drops(self, sim):
        net = Network(sim, ConstantLatency(0.01))
        Endpoint(net, "c")
        srv = Endpoint(net, "s")
        srv.register_handler("e", lambda p, s: p)
        for i in range(50):
            net.rpc("c", "s", "e", i)
        sim.run()
        assert net.stats.dropped == 0
        assert net.stats.rpcs_completed == 50

    def test_half_loss_fails_many_rpcs_by_timeout(self, sim):
        net = lossy_net(sim, rate=0.5)
        Endpoint(net, "c")
        srv = Endpoint(net, "s")
        srv.register_handler("e", lambda p, s: p)
        results = []
        for i in range(200):
            ev = net.rpc("c", "s", "e", i, timeout=5.0)
            ev.add_callback(lambda e: results.append(e.ok))
        sim.run()
        completed = sum(1 for ok in results if ok)
        # Both legs must survive: P ~ 0.25.
        assert 0.15 < completed / 200 < 0.40
        assert net.stats.dropped > 100

    def test_dropped_oneway_vanishes(self, sim):
        net = lossy_net(sim, rate=0.999999, seed=3)
        Endpoint(net, "a")

        class Sink(Endpoint):
            def __init__(self, *a):
                super().__init__(*a)
                self.got = 0

            def on_oneway(self, msg):
                self.got += 1

        sink = Sink(net, "b")
        for _ in range(20):
            net.send_oneway("a", "b", "x", None)
        sim.run()
        assert sink.got == 0


class TestEndToEndUnderLoss:
    def test_brokering_degrades_gracefully(self):
        """With a lossy WAN the system keeps placing jobs: lost
        queries become timeout fallbacks, not stuck clients."""
        clean = run_experiment(smoke_config(n_clients=10, duration_s=400.0))
        lossy = run_experiment(smoke_config(n_clients=10, duration_s=400.0,
                                            wan_loss_rate=0.15))
        fb_clean = clean.client_fallbacks()
        fb_lossy = lossy.client_fallbacks()
        # Loss converts handled operations into timeouts...
        assert fb_lossy["timeout"] > fb_clean["timeout"]
        assert fb_lossy["handled"] < fb_clean["handled"]
        # ...but everything that reached the channel got placed.
        assert all(j.site is not None
                   for c in lossy.clients for j in c.jobs[:-1])
        assert lossy.n_jobs > 0
