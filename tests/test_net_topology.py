"""Tests for broker overlay topologies and client assignment."""

import pytest

from repro.net import BrokerTopology, assign_clients
from repro.sim import RngRegistry


class TestBrokerTopology:
    def test_mesh_is_complete(self):
        topo = BrokerTopology(["a", "b", "c", "d"], kind="mesh")
        assert all(len(topo.neighbors(n)) == 3 for n in topo.nodes)
        assert topo.diameter() == 1

    def test_ring(self):
        topo = BrokerTopology(list(range(5)), kind="ring")
        assert all(len(topo.neighbors(n)) == 2 for n in topo.nodes)
        assert topo.diameter() == 2

    def test_star_hub_and_leaves(self):
        topo = BrokerTopology(["hub", "l1", "l2", "l3"], kind="star")
        assert len(topo.neighbors("hub")) == 3
        assert len(topo.neighbors("l1")) == 1
        assert topo.diameter() == 2

    def test_line(self):
        topo = BrokerTopology([1, 2, 3, 4], kind="line")
        assert topo.diameter() == 3

    def test_single_node(self):
        topo = BrokerTopology(["only"], kind="mesh")
        assert topo.neighbors("only") == []
        assert topo.diameter() == 0
        assert topo.is_connected()

    def test_two_node_ring_no_self_loops(self):
        topo = BrokerTopology(["a", "b"], kind="ring")
        assert topo.neighbors("a") == ["b"]

    def test_all_kinds_connected(self):
        for kind in ("mesh", "ring", "star", "line"):
            assert BrokerTopology(list(range(6)), kind=kind).is_connected()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            BrokerTopology([1, 2], kind="torus")

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            BrokerTopology([1, 1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BrokerTopology([])

    def test_len(self):
        assert len(BrokerTopology([1, 2, 3])) == 3


class TestAssignClients:
    def test_every_client_assigned(self):
        rng = RngRegistry(0).stream("assign")
        mapping = assign_clients([f"c{i}" for i in range(50)], ["d1", "d2", "d3"], rng)
        assert len(mapping) == 50
        assert set(mapping.values()) <= {"d1", "d2", "d3"}

    def test_single_dp_gets_everyone(self):
        rng = RngRegistry(0).stream("assign")
        mapping = assign_clients(["a", "b"], ["dp"], rng)
        assert set(mapping.values()) == {"dp"}

    def test_roughly_balanced(self):
        rng = RngRegistry(1).stream("assign")
        mapping = assign_clients(list(range(3000)), list(range(3)), rng)
        counts = [sum(1 for v in mapping.values() if v == d) for d in range(3)]
        assert all(800 < c < 1200 for c in counts)

    def test_deterministic_given_stream(self):
        m1 = assign_clients(list(range(20)), ["x", "y"], RngRegistry(5).stream("assign"))
        m2 = assign_clients(list(range(20)), ["x", "y"], RngRegistry(5).stream("assign"))
        assert m1 == m2

    def test_no_dps_rejected(self):
        with pytest.raises(ValueError):
            assign_clients(["c"], [], RngRegistry(0).stream("assign"))


class TestAssignClientsNearest:
    def _model(self, seed=4):
        from repro.net import PairwiseWanLatency
        return PairwiseWanLatency(RngRegistry(seed).stream("wan"))

    def test_every_client_assigned(self):
        from repro.net import assign_clients_nearest
        mapping = assign_clients_nearest(
            [f"c{i}" for i in range(30)], ["d1", "d2", "d3"], self._model())
        assert len(mapping) == 30
        assert set(mapping.values()) == {"d1", "d2", "d3"}

    def test_load_skew_bounded(self):
        from repro.net import assign_clients_nearest
        mapping = assign_clients_nearest(
            [f"c{i}" for i in range(31)], ["d1", "d2", "d3"],
            self._model(), max_skew=2)
        counts = [sum(1 for v in mapping.values() if v == d)
                  for d in ("d1", "d2", "d3")]
        assert max(counts) - min(counts) <= 2

    def test_prefers_nearest_when_unconstrained(self):
        from repro.net import assign_clients_nearest
        model = self._model()
        mapping = assign_clients_nearest(
            ["lonely"], ["d1", "d2", "d3"], model, max_skew=10)
        best = min(("d1", "d2", "d3"),
                   key=lambda d: model.base_latency("lonely", d))
        assert mapping["lonely"] == best

    def test_deterministic(self):
        from repro.net import assign_clients_nearest
        clients = [f"c{i}" for i in range(12)]
        m1 = assign_clients_nearest(clients, ["a", "b"], self._model(7))
        m2 = assign_clients_nearest(clients, ["a", "b"], self._model(7))
        assert m1 == m2

    def test_validation(self):
        from repro.net import assign_clients_nearest
        with pytest.raises(ValueError):
            assign_clients_nearest(["c"], [], self._model())
        with pytest.raises(ValueError):
            assign_clients_nearest(["c"], ["d"], self._model(), max_skew=0)

    def test_nearest_config_runs_end_to_end(self):
        from repro.experiments import smoke_config, run_experiment
        res = run_experiment(smoke_config(
            n_clients=8, duration_s=150.0, decision_points=2,
            client_assignment="nearest"))
        assert res.n_jobs > 0

    def test_unknown_assignment_rejected(self):
        from repro.experiments import smoke_config
        with pytest.raises(ValueError):
            smoke_config(client_assignment="alphabetical")
