"""Tests for the simulated transport and RPC layer."""

import pytest

from repro.net import ConstantLatency, Endpoint, Network, RpcError, RpcTimeout
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def net(sim):
    return Network(sim, ConstantLatency(0.1))


def make_endpoint(net, node_id):
    return Endpoint(net, node_id)


class TestRegistration:
    def test_register_and_lookup(self, net):
        ep = make_endpoint(net, "a")
        assert net.endpoint("a") is ep
        assert "a" in net

    def test_duplicate_id_rejected(self, net):
        make_endpoint(net, "a")
        with pytest.raises(ValueError):
            make_endpoint(net, "a")

    def test_duplicate_handler_rejected(self, net):
        ep = make_endpoint(net, "a")
        ep.register_handler("op", lambda p, s: None)
        with pytest.raises(ValueError):
            ep.register_handler("op", lambda p, s: None)


class TestRpc:
    def test_round_trip_takes_two_latencies(self, sim, net):
        make_endpoint(net, "client")
        server = make_endpoint(net, "server")
        server.register_handler("echo", lambda payload, src: payload)
        done = []
        ev = net.rpc("client", "server", "echo", {"x": 1})
        ev.add_callback(lambda e: done.append((sim.now, e.value)))
        sim.run()
        assert done == [(pytest.approx(0.2), {"x": 1})]

    def test_generator_handler_consumes_time(self, sim, net):
        make_endpoint(net, "client")
        server = make_endpoint(net, "server")

        def handler(payload, src):
            yield 2.0
            return payload * 2

        server.register_handler("double", handler)
        ev = net.rpc("client", "server", "double", 21)
        done = []
        ev.add_callback(lambda e: done.append((sim.now, e.value)))
        sim.run()
        assert done == [(pytest.approx(2.2), 42)]

    def test_handler_exception_fails_rpc(self, sim, net):
        make_endpoint(net, "client")
        server = make_endpoint(net, "server")
        server.register_handler("boom", lambda p, s: (_ for _ in ()).throw(ValueError("bad")))
        ev = net.rpc("client", "server", "boom")
        sim.run()
        assert ev.ok is False and isinstance(ev.value, RpcError)
        assert "bad" in str(ev.value)

    def test_generator_handler_exception_fails_rpc(self, sim, net):
        make_endpoint(net, "client")
        server = make_endpoint(net, "server")

        def handler(payload, src):
            yield 1.0
            raise KeyError("missing")

        server.register_handler("boom", handler)
        ev = net.rpc("client", "server", "boom")
        sim.run()
        assert ev.ok is False and isinstance(ev.value, RpcError)

    def test_missing_handler_fails_rpc(self, sim, net):
        make_endpoint(net, "client")
        make_endpoint(net, "server")
        ev = net.rpc("client", "server", "nope")
        sim.run()
        assert ev.ok is False and "no handler" in str(ev.value)

    def test_unknown_destination_raises_immediately(self, net):
        make_endpoint(net, "client")
        with pytest.raises(KeyError):
            net.rpc("client", "ghost", "op")

    def test_timeout_fails_but_server_completes(self, sim, net):
        make_endpoint(net, "client")
        server = make_endpoint(net, "server")
        served = []

        def slow(payload, src):
            yield 10.0
            served.append(sim.now)
            return "late"

        server.register_handler("slow", slow)
        ev = net.rpc("client", "server", "slow", timeout=1.0)
        sim.run()
        # Caller saw a timeout...
        assert ev.ok is False and isinstance(ev.value, RpcTimeout)
        # ...but the server still did the work (paper's discard semantics).
        assert served == [pytest.approx(10.1)]
        assert net.stats.rpcs_completed == 0

    def test_response_after_timeout_discarded_quietly(self, sim, net):
        make_endpoint(net, "client")
        server = make_endpoint(net, "server")

        def slow(payload, src):
            yield 5.0
            return "x"

        server.register_handler("slow", slow)
        net.rpc("client", "server", "slow", timeout=0.5)
        sim.run()  # must not raise when the response arrives at t=5.2

    def test_payload_size_adds_transfer_time(self, sim):
        net = Network(sim, ConstantLatency(0.1), kb_transfer_s=0.01)
        make_endpoint(net, "c")
        server = make_endpoint(net, "s")
        server.register_handler("get", lambda p, s: "data")
        done = []
        ev = net.rpc("c", "s", "get", size_kb=10.0, response_size_kb=100.0)
        ev.add_callback(lambda e: done.append(sim.now))
        sim.run()
        # 0.1 + 10*0.01 out, 0.1 + 100*0.01 back = 1.3
        assert done == [pytest.approx(1.3)]

    def test_stats_counters(self, sim, net):
        make_endpoint(net, "c")
        server = make_endpoint(net, "s")
        server.register_handler("ok", lambda p, s: 1)
        server.register_handler("bad", lambda p, s: (_ for _ in ()).throw(RuntimeError()))
        net.rpc("c", "s", "ok")
        net.rpc("c", "s", "bad")
        sim.run()
        assert net.stats.rpcs_started == 2
        assert net.stats.rpcs_completed == 1
        assert net.stats.rpcs_failed == 1
        assert net.stats.per_op == {"ok": 1, "bad": 1}

    def test_concurrent_rpcs_independent(self, sim, net):
        make_endpoint(net, "c")
        server = make_endpoint(net, "s")
        server.register_handler("echo", lambda p, s: p)
        results = []
        for i in range(5):
            net.rpc("c", "s", "echo", i).add_callback(
                lambda e: results.append(e.value))
        sim.run()
        assert sorted(results) == [0, 1, 2, 3, 4]


class TestOneway:
    def test_oneway_delivery(self, sim, net):
        make_endpoint(net, "a")

        class Sink(Endpoint):
            def __init__(self, network, node_id):
                super().__init__(network, node_id)
                self.received = []

            def on_oneway(self, msg):
                self.received.append((sim.now, msg.op, msg.payload))

        sink = Sink(net, "b")
        net.send_oneway("a", "b", "gossip", [1, 2, 3])
        sim.run()
        assert sink.received == [(pytest.approx(0.1), "gossip", [1, 2, 3])]

    def test_oneway_unknown_destination(self, net):
        make_endpoint(net, "a")
        with pytest.raises(KeyError):
            net.send_oneway("a", "ghost", "x", None)
