"""Unit tests for counters, histograms, and the metrics registry."""

import pytest

from repro.obs import Counter, Histogram, LATENCY_BUCKETS_S, MetricsRegistry


class TestCounter:
    def test_inc_and_int(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5 and int(c) == 5


class TestHistogram:
    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=[])
        with pytest.raises(ValueError):
            Histogram("h", bounds=[2.0, 1.0])

    def test_empty_summary(self):
        # An empty histogram must not fabricate real-looking zeros:
        # every statistic is None until something is observed.
        h = Histogram("h", bounds=[1.0, 2.0])
        assert h.percentile(50) is None
        assert h.percentile(99) is None
        assert h.summary() == {"count": 0, "sum": 0.0, "mean": None,
                               "min": None, "p50": None, "p90": None,
                               "p95": None, "p99": None, "max": None}

    def test_observe_updates_stats(self):
        h = Histogram("h", bounds=[1.0, 10.0, 100.0])
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(55.5 / 3)
        assert h.min == 0.5 and h.max == 50.0
        assert h.buckets == [1, 1, 1, 0]

    def test_overflow_bucket(self):
        h = Histogram("h", bounds=[1.0])
        h.observe(99.0)
        assert h.buckets == [0, 1]
        # Overflow quantiles report the largest value actually seen.
        assert h.percentile(99) == 99.0

    def test_percentile_interpolates_within_bucket(self):
        h = Histogram("h", bounds=[0.0, 10.0])
        for v in (2.0, 4.0, 6.0, 8.0):
            h.observe(v)
        # All four land in the (0, 10] bucket; interpolation is clamped
        # to the observed [2, 8] range.
        assert 2.0 <= h.percentile(50) <= 8.0
        assert h.percentile(100) == 8.0

    def test_percentile_bounds_checked(self):
        h = Histogram("h", bounds=[1.0])
        with pytest.raises(ValueError):
            h.percentile(0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_single_value_percentiles_exact(self):
        h = Histogram("h", bounds=list(LATENCY_BUCKETS_S))
        h.observe(0.3)
        assert h.percentile(50) == pytest.approx(0.3)
        assert h.percentile(99) == pytest.approx(0.3)

    def test_default_buckets_span_latency_range(self):
        assert LATENCY_BUCKETS_S[0] == 0.001
        assert LATENCY_BUCKETS_S[-1] > 500.0
        assert list(LATENCY_BUCKETS_S) == sorted(LATENCY_BUCKETS_S)


class TestMetricsRegistry:
    def test_counter_is_lazily_created_and_shared(self):
        m = MetricsRegistry()
        assert m.counter("a") is m.counter("a")
        m.counter("a").inc(3)
        assert m.counter_value("a") == 3

    def test_unknown_counter_value_is_zero(self):
        assert MetricsRegistry().counter_value("nope") == 0

    def test_histogram_lazily_created_and_shared(self):
        m = MetricsRegistry()
        h = m.histogram("lat", bounds=[1.0, 2.0])
        assert m.histogram("lat") is h

    def test_snapshot_is_json_ready(self):
        m = MetricsRegistry()
        m.counter("b").inc()
        m.counter("a").inc(2)
        m.histogram("lat", bounds=[1.0]).observe(0.5)
        snap = m.snapshot()
        assert list(snap["counters"]) == ["a", "b"]  # sorted
        assert snap["counters"]["a"] == 2
        assert snap["histograms"]["lat"]["count"] == 1
