"""Flight recorder + postmortem tests (repro.obs.flight).

The black-box contract: an armed recorder costs a healthy run nothing,
and any abnormal exit — crash, strict-check violation, SIGTERM — leaves
one bounded JSON dump that ``digruber postmortem`` can analyze.  The
abort path must also leave every streaming artifact (telemetry
timeline, trace JSONL) whole-line-valid, which is the mid-write-kill
satellite.
"""

import json

import pytest

from repro.check.invariants import InvariantViolation
from repro.experiments.configs import smoke_config
from repro.experiments.runner import run_experiment
from repro.obs.flight import (
    FlightRecorder,
    Terminated,
    abort_reason,
    load_flight,
    postmortem_report,
)


class TestAbortReason:
    def test_classification(self):
        assert abort_reason(InvariantViolation("x")) == "strict-check"
        assert abort_reason(Terminated("signal 15")) == "sigterm"
        assert abort_reason(KeyboardInterrupt()) == "interrupt"
        assert abort_reason(RuntimeError("boom")) == "crash"


def _corrupting_hook(at_t: float):
    """Deployment hook that silently corrupts a site's accounting at
    ``at_t``, so the next strict checkpoint raises InvariantViolation."""
    def hook(sim=None, grid=None, **_):
        def corrupt():
            site = next(iter(grid.sites.values()))
            site.busy_cpus += 7
        sim.schedule(at_t, corrupt)
    return hook


def _crashing_hook(at_t: float):
    def hook(sim=None, **_):
        def crash():
            raise RuntimeError("injected mid-run crash")
        sim.schedule(at_t, crash)
    return hook


class TestDumpOnAbort:
    def _strict_config(self, tmp_path, **overrides):
        return smoke_config(
            duration_s=600.0, n_clients=4,
            check_enabled=True, check_strict=True,
            check_interval_s=60.0,
            flight_enabled=True,
            flight_path=str(tmp_path / "flight.json"),
            **overrides)

    def test_strict_violation_dumps_and_postmortem_parses(self, tmp_path):
        config = self._strict_config(tmp_path)
        with pytest.raises(InvariantViolation):
            run_experiment(config, deployment_hook=_corrupting_hook(100.0))
        doc = load_flight(config.flight_path)
        assert doc["flight"] == 1
        assert doc["reason"] == "strict-check"
        assert doc["exception"]["type"] == "InvariantViolation"
        assert doc["meta"]["seed"] == config.seed
        assert 0.0 < doc["meta"]["t_abort"] < config.duration_s
        assert doc["checker"]["n_violations"] >= 1
        v = doc["checker"]["violations"][-1]
        assert v["rule"] and v["subject"] and v["detail"]
        report = postmortem_report(doc)
        assert "strict-check" in report
        assert "InvariantViolation" in report
        assert "violation(s)" in report

    def test_crash_dump_includes_traceback_and_kernel_state(self, tmp_path):
        config = self._strict_config(tmp_path)
        with pytest.raises(RuntimeError, match="injected"):
            run_experiment(config, deployment_hook=_crashing_hook(150.0))
        doc = load_flight(config.flight_path)
        assert doc["reason"] == "crash"
        assert "injected mid-run crash" in doc["exception"]["traceback"]
        assert doc["kernel"]["events_executed"] > 0
        assert doc["deployment"]  # per-DP state captured
        assert doc["clients"]["n"] == config.n_clients

    def test_abort_snapshots_present_when_telemetry_on(self, tmp_path):
        config = self._strict_config(tmp_path, telemetry_enabled=True,
                                     telemetry_interval_s=30.0)
        with pytest.raises(RuntimeError):
            run_experiment(config, deployment_hook=_crashing_hook(200.0))
        doc = load_flight(config.flight_path)
        assert doc["snapshots"], "flight dump should embed telemetry tail"
        assert doc["snapshots"][-1]["t"] <= 200.0
        assert "telemetry:" in postmortem_report(doc)

    def test_healthy_run_leaves_no_dump(self, tmp_path):
        config = smoke_config(duration_s=120.0, n_clients=2,
                              flight_enabled=True,
                              flight_path=str(tmp_path / "flight.json"))
        run_experiment(config)
        assert not (tmp_path / "flight.json").exists()


class TestMidWriteKill:
    """Satellite: a run killed mid-write must leave whole-line-valid
    JSONL artifacts — the abort path flushes and closes every sink."""

    def test_trace_jsonl_valid_after_crash(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        config = smoke_config(duration_s=600.0, n_clients=4,
                              trace_enabled=True,
                              trace_path=str(trace_path))
        with pytest.raises(RuntimeError):
            run_experiment(config, deployment_hook=_crashing_hook(300.0))
        lines = trace_path.read_text().splitlines()
        assert lines, "sink saw no events before the crash"
        for line in lines:  # every line parses: no mid-line truncation
            doc = json.loads(line)
            assert "t" in doc and "kind" in doc

    def test_timeline_jsonl_valid_after_crash(self, tmp_path):
        from repro.obs.timeline import load_timeline
        path = tmp_path / "timeline.jsonl"
        config = smoke_config(duration_s=600.0, n_clients=4,
                              telemetry_enabled=True,
                              telemetry_interval_s=30.0,
                              telemetry_path=str(path))
        with pytest.raises(RuntimeError):
            run_experiment(config, deployment_hook=_crashing_hook(200.0))
        meta, rows = load_timeline(str(path), tolerant=False)  # strict!
        assert meta["interval_s"] == 30.0
        assert rows and rows[-1]["t"] <= 200.0

    def test_sink_context_manager_closes_on_exception(self, tmp_path):
        from repro.obs import JsonlSink, TraceEvent
        path = tmp_path / "s.jsonl"
        with pytest.raises(RuntimeError):
            with JsonlSink(str(path)) as sink:
                sink(TraceEvent(1.0, "n", "k", {}))
                raise RuntimeError("boom")
        assert sink.closed
        (line,) = path.read_text().splitlines()
        assert json.loads(line)["kind"] == "k"
        sink.close()  # idempotent
        sink(TraceEvent(2.0, "n", "k", {}))  # write-after-close: no-op
        assert sink.written == 1


class TestRestoredRunAbort:
    """Satellite: a *restored* run that aborts must behave exactly like
    a fresh aborting run — flight dump, whole-line-valid artifacts, and
    every reattached sink effectively closed exactly once."""

    def test_restored_abort_closes_sinks_once_and_artifacts_valid(
            self, tmp_path, monkeypatch):
        from repro.experiments.runner import (abort_experiment,
                                              build_experiment)
        from repro.obs.flight import Terminated
        from repro.obs.timeline import TimelineSampler, load_timeline
        from repro.obs.trace import JsonlSink
        from repro.sim.snapshot import newest_checkpoint, resume_experiment

        config = smoke_config(
            duration_s=600.0, n_clients=4,
            checkpoint_every_s=100.0,
            checkpoint_dir=str(tmp_path / "ckpt"),
            trace_enabled=True, trace_path=str(tmp_path / "trace.jsonl"),
            telemetry_enabled=True, telemetry_interval_s=30.0,
            telemetry_path=str(tmp_path / "timeline.jsonl"),
            flight_enabled=True,
            flight_path=str(tmp_path / "flight.json"))

        # The crash event must ride BOTH legs: a hook that schedules
        # into the heap only on the restored side would leave the
        # replayed heap diverging from the snapshotted one, and replay
        # verification would (correctly) refuse the restore.
        hook = _crashing_hook(450.0)

        # Effective-close spy: counts open->closed transitions, so an
        # idempotent re-close never inflates the count.
        effective = []
        real_sink_close = JsonlSink.close
        real_sampler_close = TimelineSampler.close

        def sink_close(self):
            if not self.closed:
                effective.append(("trace", id(self)))
            real_sink_close(self)

        def sampler_close(self, final_sample=True):
            if self._fh is not None and not self._fh.closed:
                effective.append(("timeline", id(self)))
            real_sampler_close(self, final_sample=final_sample)

        monkeypatch.setattr(JsonlSink, "close", sink_close)
        monkeypatch.setattr(TimelineSampler, "close", sampler_close)

        # Leg 1: run to t=300 (checkpoints at 100/200/300), SIGTERM.
        built = build_experiment(config)
        hook(sim=built.sim, deployment=built.deployment,
             network=built.network, grid=built.grid, rng=built.rng)
        built.sim.run(until=300.0)
        abort_experiment(built, Terminated("signal 15"))
        checkpoint = newest_checkpoint(config.checkpoint_dir)
        assert checkpoint is not None
        closes_before_resume = len(effective)

        # Leg 2: restore, continue, crash at t=450 inside the restored
        # run — its abort path must close the reattached sinks.
        with pytest.raises(RuntimeError, match="injected"):
            resume_experiment(checkpoint, deployment_hook=hook)

        restored_closes = effective[closes_before_resume:]
        assert sorted(kind for kind, _ in restored_closes) == \
            ["timeline", "trace"]
        assert len({sid for _, sid in restored_closes}) == 2

        # Flight dump reflects the restored run's crash, not leg 1.
        doc = load_flight(config.flight_path)
        assert doc["reason"] == "crash"
        assert "injected mid-run crash" in doc["exception"]["traceback"]

        # Artifacts are whole-line-valid and extend past the restore
        # point (the restored run regenerated the prefix and kept going).
        for line in (tmp_path / "trace.jsonl").read_text().splitlines():
            json.loads(line)
        meta, rows = load_timeline(str(tmp_path / "timeline.jsonl"),
                                   tolerant=False)
        assert meta["interval_s"] == 30.0
        assert rows and 300.0 < rows[-1]["t"] <= 450.0


class TestRecorderEdges:
    def test_dump_never_raises_on_bad_path(self, tmp_path):
        config = smoke_config(duration_s=60.0, n_clients=2)
        from repro.experiments.runner import build_experiment
        built = build_experiment(config)
        built.sim.run(until=60.0)
        rec = FlightRecorder(built, path=str(tmp_path / "no" / "dir.json"))
        rec.dump("crash", RuntimeError("x"))  # must not raise
        assert rec.dumped_to is None

    def test_default_path_embeds_seed(self):
        config = smoke_config(duration_s=60.0, n_clients=2)
        from repro.experiments.runner import build_experiment
        built = build_experiment(config)
        rec = FlightRecorder(built)
        assert rec.path == f"flight-{config.seed}.json"

    def test_load_flight_rejects_non_flight_json(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text('{"hello": 1}')
        with pytest.raises(ValueError, match="flight"):
            load_flight(str(p))
