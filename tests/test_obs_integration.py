"""End-to-end observability: a traced experiment run exposes its internals."""

import json

import pytest

from repro.experiments import run_experiment, smoke_config


@pytest.fixture(scope="module")
def traced_result(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs") / "trace.jsonl"
    cfg = smoke_config(decision_points=2, trace_enabled=True,
                       trace_path=str(path), name="smoke-traced")
    result = run_experiment(cfg)
    return result, path


class TestTracedRun:
    def test_trace_buffer_populated(self, traced_result):
        result, _ = traced_result
        tr = result.sim.trace
        assert len(tr) > 0
        # The layers the tracer instruments all show up.
        assert tr.count("process.start") > 0
        assert tr.count("rpc.span") > 0
        assert tr.count("sync.round") > 0
        assert tr.count("engine.dispatch") > 0

    def test_jsonl_stream_written(self, traced_result):
        result, path = traced_result
        lines = path.read_text().splitlines()
        assert len(lines) >= result.sim.trace.emitted  # sink sees evicted too
        first = json.loads(lines[0])
        assert {"t", "node", "kind"} <= set(first)

    def test_counters_and_histograms_populated(self, traced_result):
        result, _ = traced_result
        m = result.sim.metrics
        assert m.counter_value("engine.dispatches") > 0
        assert m.counter_value("sync.rounds") > 0
        assert m.histogram("rpc.latency_s").count > 0
        assert m.counter_value("rpc.ok") == result.network.stats.rpcs_completed

    def test_no_dropped_sync_chains(self, traced_result):
        # The accuracy figures assume every sync/monitor tick fired.
        result, _ = traced_result
        assert result.dropped_sync_chains() == 0
        assert result.sim.metrics.counter_value("kernel.unhandled_failures") == 0

    def test_obs_summary_renders(self, traced_result):
        result, _ = traced_result
        text = result.obs_summary()
        assert "rpc.latency_s" in text
        assert "engine.dispatches" in text
        assert "trace:" in text


class TestUntracedRun:
    def test_default_run_records_no_trace_but_keeps_metrics(self):
        result = run_experiment(smoke_config(duration_s=120.0))
        assert len(result.sim.trace) == 0  # tracing is opt-in
        assert result.sim.metrics.counter_value("engine.dispatches") > 0
        assert result.obs_summary()  # summary works without tracing
