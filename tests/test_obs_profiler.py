"""Tests for the sampling subsystem profiler (repro.obs.profiler).

Host-side wall-clock profiling: the classifier's innermost-match-wins
bucket attribution is tested on synthetic frame chains; the sampler
thread is exercised against a real (busy) target.
"""

import time
from types import SimpleNamespace

import pytest

from repro.obs.profiler import BUCKET_PATTERNS, SubsystemProfiler, _classify


def _frames(*filenames):
    """Build an innermost-first f_back chain of fake frames."""
    frame = None
    for fn in reversed(filenames):  # outermost first
        frame = SimpleNamespace(f_code=SimpleNamespace(co_filename=fn),
                                f_back=frame)
    return frame


class TestClassifier:
    def test_innermost_match_wins(self):
        f = _frames("/x/repro/grid/site.py",      # innermost
                    "/x/repro/sim/kernel.py")
        assert _classify(f) == "site-drain"

    def test_dispatch_only_when_nothing_inner_matches(self):
        assert _classify(_frames("/x/repro/sim/kernel.py")) == "dispatch"
        f = _frames("/x/repro/core/engine.py", "/x/repro/sim/kernel.py")
        assert _classify(f) == "decide"

    def test_unknown_stack_is_other(self):
        assert _classify(_frames("/somewhere/else.py")) == "other"

    def test_every_bucket_reachable(self):
        probes = {
            "site-drain": "/x/repro/grid/site.py",
            "sync": "/x/repro/core/sync.py",
            "decide": "/x/repro/core/selectors.py",
            "control": "/x/repro/control/planner.py",
            "check": "/x/repro/check/invariants.py",
            "telemetry": "/x/repro/obs/timeline.py",
            "net": "/x/repro/net/transport.py",
            "workload": "/x/repro/workloads/diurnal.py",
            "dispatch": "/x/repro/sim/kernel.py",
        }
        assert set(probes) == {b for b, _ in BUCKET_PATTERNS}
        for bucket, path in probes.items():
            assert _classify(_frames(path)) == bucket, bucket


class TestProfilerThread:
    def test_samples_a_busy_target(self):
        with SubsystemProfiler(interval_s=0.001) as prof:
            t_end = time.perf_counter() + 0.08  # det: ok - host profiling test
            while time.perf_counter() < t_end:  # det: ok - host profiling test
                sum(range(200))
        report = prof.report()
        assert report["samples"] > 0
        assert report["wall_s"] > 0.05
        # The busy loop lives in the test file -> "other" dominates (a
        # stray sample can land in profiler start/stop frames, which
        # classify as telemetry).
        assert list(report["buckets"])[0] == "other"
        assert report["buckets"]["other"]["pct"] > 50.0

    def test_report_percentages_sum_to_100(self):
        prof = SubsystemProfiler()
        prof.samples = {"decide": 3, "dispatch": 1}
        prof.total_samples = 4
        buckets = prof.report()["buckets"]
        assert sum(b["pct"] for b in buckets.values()) == 100.0
        assert list(buckets) == ["decide", "dispatch"]  # sorted by weight

    def test_double_start_rejected_and_stop_idempotent(self):
        prof = SubsystemProfiler(interval_s=0.005)
        prof.start()
        with pytest.raises(RuntimeError):
            prof.start()
        prof.stop()
        prof.stop()  # no-op
        assert prof.report()["samples"] >= 0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            SubsystemProfiler(interval_s=0.0)

    def test_profiles_a_real_experiment(self):
        from repro.experiments.configs import smoke_config
        from repro.experiments.runner import run_experiment
        # Long enough that the profiled wall time dwarfs the sampling
        # interval even in a warm process (a 300 s smoke finishes in
        # ~50 ms once imports and numpy are hot, yielding single-digit
        # sample counts and a flaky assertion below).
        with SubsystemProfiler(interval_s=0.001) as prof:
            run_experiment(smoke_config(duration_s=3600.0, n_clients=8))
        report = prof.report()
        assert report["samples"] > 10
        # The run spends its time inside repro subsystems, not "other".
        known = sum(b["samples"] for name, b in report["buckets"].items()
                    if name != "other")
        assert known > 0
