"""Unit tests for causal span tracing (repro.obs.spans)."""

import json

import pytest

from repro.obs import Span, SpanContext, SpanRecorder, chrome_trace


def _recorder(**kw):
    t = kw.pop("t", [0.0])
    rec = SpanRecorder(clock=lambda: t[0], **kw)
    return rec, t


class TestDisabled:
    def test_off_by_default_and_records_nothing(self):
        rec = SpanRecorder()
        assert rec.enabled is False
        assert rec.start_trace("submit", "h") is None
        assert rec.start_span("child", "h", parent=("t", "s")) is None
        assert rec.record("q", "h", ("t", "s"), start=0.0, end=1.0) is None
        rec.finish(None)  # tolerant, no raise
        assert len(rec) == 0 and rec.roots_seen == 0

    def test_none_parent_turns_off_subtree(self):
        rec, _ = _recorder(enabled=True)
        # An unsampled/off root propagates None down the whole chain:
        # every child call site stays flat, no conditional trees.
        assert rec.start_span("child", "h", parent=None) is None
        assert rec.record("q", "h", None, start=0.0, end=1.0) is None
        assert SpanRecorder.ctx_of(None) is None
        assert len(rec) == 0


class TestLinkage:
    def test_child_links_to_parent_span(self):
        rec, t = _recorder(enabled=True)
        root = rec.start_trace("submit", "host0", jid=7)
        t[0] = 1.5
        child = rec.start_span("brokering", "host0", root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.start == 1.5 and child.end is None

    def test_parent_as_context_or_tuple(self):
        rec, _ = _recorder(enabled=True)
        root = rec.start_trace("submit", "h")
        via_ctx = rec.start_span("a", "h", root.context)
        via_tuple = rec.start_span("b", "h", (root.trace_id, root.span_id))
        assert isinstance(root.context, SpanContext)
        assert via_ctx.parent_id == via_tuple.parent_id == root.span_id
        assert via_ctx.trace_id == via_tuple.trace_id == root.trace_id

    def test_ctx_of_is_wire_ready(self):
        rec, _ = _recorder(enabled=True)
        root = rec.start_trace("submit", "h")
        ctx = SpanRecorder.ctx_of(root)
        assert ctx == (root.trace_id, root.span_id)

    def test_record_is_retroactive(self):
        rec, t = _recorder(enabled=True)
        t[0] = 100.0
        root = rec.start_trace("submit", "h")
        # Queue wait known only in hindsight: start < now is legal.
        q = rec.record("queue", "site3", root, start=40.0, end=90.0, jid=1)
        assert q.start == 40.0 and q.end == 90.0
        assert q.duration_s == 50.0 and q.attrs["jid"] == 1

    def test_finish_sets_end_once(self):
        rec, t = _recorder(enabled=True)
        root = rec.start_trace("submit", "h")
        t[0] = 2.0
        rec.finish(root, outcome="ok")
        t[0] = 9.0
        rec.finish(root, outcome="late")  # idempotent: first close wins
        assert root.end == 2.0 and root.attrs["outcome"] == "ok"
        assert root.duration_s == 2.0

    def test_finished_and_open_views(self):
        rec, _ = _recorder(enabled=True)
        a = rec.start_trace("a", "h")
        b = rec.start_trace("b", "h")
        rec.finish(a)
        assert [s.name for s in rec.finished] == ["a"]
        assert [s.name for s in rec.open_spans] == ["b"]
        assert [s.name for s in rec.spans()] == ["a", "b"]  # start order
        rec.clear()
        assert len(rec) == 0 and rec.roots_seen == 0
        assert b.end is None  # clear drops the store, not the objects


class TestSampling:
    def test_every_nth_root_sampled(self):
        rec, _ = _recorder(enabled=True, sample_every=3)
        roots = [rec.start_trace("submit", "h", i=i) for i in range(7)]
        kept = [r for r in roots if r is not None]
        assert [r.attrs["i"] for r in kept] == [0, 3, 6]
        assert rec.roots_seen == 7
        assert rec.roots_sampled == 3 and rec.roots_dropped == 4
        # Children of dropped roots record nothing at all.
        assert rec.start_span("child", "h", roots[1]) is None
        assert len(rec) == 3

    def test_sample_every_clamped_to_one(self):
        rec = SpanRecorder(enabled=True, sample_every=0)
        assert rec.sample_every == 1
        assert rec.start_trace("s", "h") is not None


class TestDeterministicIds:
    def test_seeded_ids_reproduce(self):
        np = pytest.importorskip("numpy")
        ids = []
        for _ in range(2):
            rec, _ = _recorder(enabled=True)
            rec.seed_ids(np.random.default_rng(42))
            root = rec.start_trace("submit", "h")
            child = rec.start_span("c", "h", root)
            ids.append((root.trace_id, root.span_id, child.span_id))
        assert ids[0] == ids[1]
        assert len(set(ids[0])) == 3  # and distinct from each other

    def test_ids_unique_across_block_refills(self):
        np = pytest.importorskip("numpy")
        rec, _ = _recorder(enabled=True)
        rec.seed_ids(np.random.default_rng(1))
        spans = [rec.start_trace("s", "h") for _ in range(300)]
        all_ids = [s.span_id for s in spans] + [s.trace_id for s in spans]
        assert len(set(all_ids)) == len(all_ids)
        assert all(len(i) == 16 for i in all_ids)  # zero-padded hex64

    def test_counter_fallback_without_rng(self):
        rec, _ = _recorder(enabled=True)
        root = rec.start_trace("s", "h")
        assert root.trace_id == f"{1:016x}" and root.span_id == f"{2:016x}"


class TestExport:
    def test_jsonl_flags_orphans_and_is_byte_stable(self, tmp_path):
        blobs = []
        for _ in range(2):
            rec, t = _recorder(enabled=True)
            root = rec.start_trace("submit", "h", jid=5)
            rec.start_span("brokering", "h", root)  # never finished
            t[0] = 3.0
            rec.finish(root, outcome="ok")
            path = tmp_path / "spans.jsonl"
            assert rec.export_jsonl(str(path)) == 2
            blobs.append(path.read_bytes())
        assert blobs[0] == blobs[1]
        lines = [json.loads(ln) for ln in blobs[0].splitlines()]
        by_name = {d["name"]: d for d in lines}
        assert by_name["submit"]["orphan"] is False
        assert by_name["brokering"]["orphan"] is True
        assert by_name["brokering"]["end"] is None  # flagged, not dropped

    def test_attrs_coerced_to_json_native(self):
        np = pytest.importorskip("numpy")
        rec, _ = _recorder(enabled=True)
        root = rec.start_trace("submit", "h", jid=np.int64(3),
                               lat=np.float32(0.5), site=("a", 1))
        d = root.to_dict()
        json.dumps(d, allow_nan=False)  # must not raise
        assert d["attrs"]["jid"] == 3
        assert d["attrs"]["lat"] == pytest.approx(0.5)
        assert d["attrs"]["site"] == str(("a", 1))

    def test_chrome_trace_shape(self, tmp_path):
        rec, t = _recorder(enabled=True)
        root = rec.start_trace("submit", "host0")
        rec.start_span("decide", "dp0", root)  # orphan lane on dp0
        t[0] = 2.0
        rec.finish(root)
        path = tmp_path / "trace.json"
        assert rec.export_chrome(str(path)) == 4  # 2 lanes + 2 events
        doc = json.loads(path.read_text())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        phases = {}
        for ev in doc["traceEvents"]:
            phases.setdefault(ev["ph"], []).append(ev)
        lanes = {ev["args"]["name"]: ev["pid"] for ev in phases["M"]}
        assert set(lanes) == {"host0", "dp0"}
        by_name = {ev["name"]: ev for ev in phases["X"]}
        assert by_name["submit"]["dur"] == pytest.approx(2e6)  # microseconds
        assert by_name["decide"]["dur"] == 0.0
        assert by_name["decide"]["args"]["orphan"] is True
        assert by_name["decide"]["pid"] == lanes["dp0"]

    def test_chrome_trace_links_parent(self):
        rec, _ = _recorder(enabled=True)
        root = rec.start_trace("submit", "h")
        rec.start_span("c", "h", root)
        doc = chrome_trace(rec.to_dicts())
        xs = {ev["name"]: ev for ev in doc["traceEvents"] if ev["ph"] == "X"}
        assert xs["c"]["args"]["parent_id"] == root.span_id
        assert xs["c"]["args"]["trace_id"] == root.trace_id


class TestSpanObject:
    def test_duration_none_while_open(self):
        s = Span("t", "s", None, "n", "node", 1.0)
        assert s.duration_s is None
        s.end = 4.0
        assert s.duration_s == 3.0

    def test_to_dict_key_order_fixed(self):
        s = Span("t", "s", None, "n", "node", 1.0, {"b": 1, "a": 2})
        d = s.to_dict()
        assert list(d) == ["trace_id", "span_id", "parent_id", "name",
                           "node", "start", "end", "orphan", "attrs"]
        assert list(d["attrs"]) == ["a", "b"]  # sorted for byte stability
