"""Unit + integration tests for the telemetry timeline (repro.obs.timeline).

The tentpole claims under test:

* one unified sampling path — the sampler's rows come from
  ``MetricsRegistry.collect()``, the same registry the control plane
  publishes into, so control and telemetry can never disagree;
* bounded in-memory series + JSONL + OpenMetrics export;
* telemetry-on is event-identical to telemetry-off (the ``telemetry``
  differ pair, exercised here at test duration);
* sharded runs merge per-hood barrier snapshots into one grid-wide
  timeline that is invariant in the shard count.
"""

import json

import pytest

from repro.experiments.configs import smoke_config
from repro.experiments.runner import build_experiment, run_experiment
from repro.obs.timeline import (
    TimelineSampler,
    load_timeline,
    merge_hood_timelines,
    to_openmetrics,
)


def _run_with_telemetry(tmp_path=None, **overrides):
    kw = dict(duration_s=300.0, n_clients=4, telemetry_enabled=True,
              telemetry_interval_s=30.0)
    if tmp_path is not None:
        kw["telemetry_path"] = str(tmp_path / "timeline.jsonl")
    kw.update(overrides)
    return run_experiment(smoke_config(**kw))


class TestSamplerRows:
    def test_periodic_rows_on_the_des_clock(self):
        result = _run_with_telemetry()
        sampler = result.sampler
        assert sampler is not None
        rows = list(sampler.rows)
        # every 30s over 300s, plus the final close() sample.
        assert sampler.samples_taken >= 10
        times = [r["t"] for r in rows]
        assert times == sorted(times)
        assert 30.0 in times and 300.0 == times[-1]

    def test_rows_are_unified_collect_documents(self):
        result = _run_with_telemetry()
        row = result.sampler.tail(1)[0]
        assert set(row) == {"t", "counters", "gauges", "histograms"}
        # Grid + kernel gauges published by the sampler itself...
        assert row["gauges"]["grid.total_cpus"] > 0
        assert 0.0 <= row["gauges"]["grid.util"] <= 1.0
        assert row["gauges"]["kernel.heap_len"] >= 0
        # ...alongside per-DP gauges from the SignalBus publish path.
        assert any(k.startswith("dp.queue_depth.") for k in row["gauges"])
        # Histogram percentiles via the one-pass summary.
        assert all({"count", "p50", "p95", "max"} <= set(s)
                   for s in row["histograms"].values())

    def test_series_is_bounded(self):
        result = _run_with_telemetry(telemetry_capacity=3)
        sampler = result.sampler
        assert len(sampler.rows) == 3
        assert sampler.samples_taken > 3  # older rows evicted, not lost

    def test_sampler_off_by_default(self):
        result = run_experiment(smoke_config(duration_s=60.0, n_clients=2))
        assert result.sampler is None


class TestJsonlExport:
    def test_file_has_meta_header_then_rows(self, tmp_path):
        result = _run_with_telemetry(tmp_path)
        path = result.config.telemetry_path
        meta, rows = load_timeline(path)
        assert meta["interval_s"] == 30.0
        assert meta["name"] == "smoke" and meta["seed"] == result.config.seed
        assert len(rows) == result.sampler.samples_taken
        assert rows[0]["t"] == 30.0

    def test_load_timeline_tolerant_skips_garbage(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text('{"meta": {"interval_s": 5.0}}\n'
                     '{"t": 5.0, "gauges": {}}\n'
                     'not json at all\n'
                     '{"t": 10.0, "gauges": {}}\n'
                     '{"t": 15.0, "gaug')  # truncated mid-write
        meta, rows = load_timeline(str(p))
        assert meta == {"interval_s": 5.0}
        assert [r["t"] for r in rows] == [5.0, 10.0]

    def test_load_timeline_strict_raises_with_lineno(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text('{"t": 5.0}\nbroken\n')
        with pytest.raises(ValueError, match="2"):
            load_timeline(str(p), tolerant=False)

    def test_empty_file(self, tmp_path):
        p = tmp_path / "empty.jsonl"
        p.write_text("")
        meta, rows = load_timeline(str(p))
        assert meta == {} and rows == []


class TestOpenMetrics:
    def test_exposition_format(self, tmp_path):
        result = _run_with_telemetry()
        out = tmp_path / "metrics.txt"
        result.sampler.export_openmetrics(str(out))
        text = out.read_text()
        assert text.endswith("# EOF\n")
        assert "# TYPE digruber_grid_util gauge" in text
        # Dotted dp.*.dpN names split the DP id into a label.
        assert 'dp="dp0"' in text
        # Histograms export as summaries with quantile labels.
        assert 'quantile="0.95"' in text
        # Every sample line parses as name{labels} value.
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name, _, value = line.rpartition(" ")
            float(value)
            assert name.startswith("digruber_")

    def test_to_openmetrics_of_empty_row(self):
        text = to_openmetrics({"t": 0.0, "counters": {}, "gauges": {},
                               "histograms": {}})
        assert text.endswith("# EOF\n")


class TestEventIdentity:
    def test_telemetry_pair_identical(self):
        from repro.check import run_pair
        report = run_pair("telemetry", duration_s=120.0)
        assert report.identical, report.describe()
        assert len(report.journal_a) > 50
        assert report.journal_a.digest == report.journal_b.digest


class TestSignalBusDedup:
    """Satellite: SignalBus publishes through the registry — gauges are
    computed once per control tick, and the unification did not move a
    single autoscale decision (same-seed journal equality is covered by
    the ``telemetry`` pair above; here we pin the decision trail)."""

    def _autoscaled(self, telemetry: bool):
        from repro.control import AutoscaleConfig
        config = smoke_config(
            duration_s=900.0, n_clients=16,
            autoscale=AutoscaleConfig(policy="model",
                                      placement="consistent_hash",
                                      interval_s=60.0, cooldown_s=120.0),
            telemetry_enabled=telemetry,
            name="dedup-regression")
        return run_experiment(config)

    def test_autoscale_decisions_unchanged_by_telemetry(self):
        off = self._autoscaled(telemetry=False)
        on = self._autoscaled(telemetry=True)
        assert off.control_stats() == on.control_stats()
        # The full decision trail, not just tallies: every action at
        # the same instant with the same detail, fleet size identical
        # at every control tick.
        assert off.planner.timeline == on.planner.timeline
        assert ([x.detail() for x in off.planner.actuator.actions]
                == [x.detail() for x in on.planner.actuator.actions])

    def test_planner_gauges_visible_in_sampler_rows(self):
        from repro.control import AutoscaleConfig
        config = smoke_config(
            duration_s=600.0, n_clients=16,
            autoscale=AutoscaleConfig(policy="model",
                                      placement="consistent_hash",
                                      interval_s=60.0, cooldown_s=120.0),
            telemetry_enabled=True)
        result = run_experiment(config)
        row = result.sampler.tail(1)[0]
        # The sampler did not sample the planner's bus itself — it read
        # the gauges the planner's own tick published.
        assert "control.n_dps" in row["gauges"]
        assert row["gauges"]["control.n_dps"] >= 1

    def test_sampler_does_not_own_planner_bus(self):
        from repro.control import AutoscaleConfig
        config = smoke_config(
            duration_s=60.0, n_clients=4,
            autoscale=AutoscaleConfig(policy="model",
                                      placement="consistent_hash",
                                      interval_s=60.0, cooldown_s=120.0),
            telemetry_enabled=True)
        built = build_experiment(config)
        assert built.sampler._owns_bus is False
        assert built.sampler.bus is built.planner.bus


class TestShardedTimeline:
    def _sharded(self, shards: int, path):
        from repro.sim.sharded import run_sharded
        config = smoke_config(duration_s=300.0, n_clients=8,
                              decision_points=4, sync_interval_s=30.0,
                              telemetry_enabled=True,
                              telemetry_path=str(path))
        return run_sharded(config, n_shards=shards)

    def test_shard_count_invariance(self, tmp_path):
        p1, p4 = tmp_path / "s1.jsonl", tmp_path / "s4.jsonl"
        r1 = self._sharded(1, p1)
        r4 = self._sharded(4, p4)
        assert r1.timeline == r4.timeline
        assert p1.read_bytes() == p4.read_bytes()
        assert len(r1.timeline) > 0

    def test_rows_sorted_by_barrier_then_hood(self, tmp_path):
        r = self._sharded(2, tmp_path / "s2.jsonl")
        keys = [(row["t"], row["hood"]) for row in r.timeline]
        assert keys == sorted(keys)
        # One row per hood per barrier.
        assert len({k for k in keys}) == len(keys)

    def test_merge_helper_orders_and_flattens(self):
        merged = merge_hood_timelines({
            1: [{"t": 30.0, "hood": 1}, {"t": 60.0, "hood": 1}],
            0: [{"t": 30.0, "hood": 0}, {"t": 60.0, "hood": 0}],
        })
        assert [(r["t"], r["hood"]) for r in merged] == \
            [(30.0, 0), (30.0, 1), (60.0, 0), (60.0, 1)]
