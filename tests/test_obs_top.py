"""Tests for the ``digruber top`` dashboard (repro.obs.top).

Covers both row formats through the one frame pipeline (monolithic
``collect()`` rows and sharded hood rows), the autoscale event
detector, replay over files, and the tail -f reader's partial-line
buffering — the property that makes live ``--follow`` safe against a
writer flushing mid-row.
"""

import io
import json

from repro.obs.top import (
    _autoscale_events,
    follow,
    frames_from_rows,
    iter_jsonl_tail,
    render_frame,
    replay,
)


def _registry_row(t, util=0.5, n_dps=2, queue0=3):
    return {
        "t": t,
        "counters": {},
        "gauges": {
            "grid.busy_cpus": 300, "grid.total_cpus": 600,
            "grid.util": util, "grid.queued_jobs": 7,
            "grid.jobs_completed": 120,
            "control.n_dps": n_dps, "control.client_backlog": 2,
            "control.sync_lag_s": 12.5,
            "kernel.event_rate": 5000.0, "kernel.heap_len": 40,
            "kernel.heap_dead_ratio": 0.1,
            "dp.queue_depth.dp0": queue0, "dp.queue_depth.dp1": 1,
            "dp.online.dp0": 1.0, "dp.online.dp1": 1.0,
            "dp.in_service.dp0": 2, "dp.clients.dp0": 4,
            "dp.ops_rate.dp0": 1.5,
        },
        "histograms": {
            "dp.decide_s.dp0": {"count": 10, "sum": 1.0, "p50": 0.08,
                                "p95": 0.3, "max": 0.5},
        },
    }


def _hood_row(t, hood, online=True):
    return {"t": t, "hood": hood, "dp_online": online,
            "dp_queue_depth": 2, "dp_in_service": 1,
            "dp_completed_ops": 50, "clients": 3, "client_backlog": 1,
            "jobs_handled": 40, "busy_cpus": 100, "total_cpus": 200,
            "util": 0.5, "queued_jobs": 4, "jobs_completed": 30}


class TestFrameNormalization:
    def test_registry_row_maps_one_to_one(self):
        (f,) = frames_from_rows([_registry_row(30.0)])
        assert f["t"] == 30.0 and f["util"] == 0.5
        assert set(f["dps"]) == {"dp0", "dp1"}
        assert f["dps"]["dp0"]["queue_depth"] == 3
        assert f["dps"]["dp0"]["decide_p95_s"] == 0.3
        assert f["n_dps"] == 2 and f["sync_lag_s"] == 12.5

    def test_hood_rows_collapse_per_barrier(self):
        rows = [_hood_row(30.0, 0), _hood_row(30.0, 1),
                _hood_row(60.0, 0), _hood_row(60.0, 1, online=False)]
        frames = frames_from_rows(rows)
        assert [f["t"] for f in frames] == [30.0, 60.0]
        f = frames[0]
        assert f["busy_cpus"] == 200 and f["total_cpus"] == 400
        assert f["util"] == 0.5 and f["n_dps"] == 2
        assert frames[1]["n_dps"] == 1  # hood1's DP went down

    def test_mixed_streams_flush_hood_batches(self):
        rows = [_hood_row(30.0, 0), _registry_row(60.0)]
        frames = frames_from_rows(rows)
        assert len(frames) == 2
        assert "hood0" in frames[0]["dps"] and "dp0" in frames[1]["dps"]

    def test_empty(self):
        assert frames_from_rows([]) == []


class TestRendering:
    def test_frame_contains_table_and_sparkline(self):
        frames = frames_from_rows([_registry_row(30.0, util=0.2),
                                   _registry_row(60.0, util=0.9)])
        text = render_frame(frames[-1], {"name": "x", "seed": 42,
                                         "duration_s": 120.0},
                            frames, events=["t=60s scale-up: 1 -> 2 DPs"])
        assert "digruber top — x seed=42" in text
        assert "t=60s (50%)" in text
        assert "util  90.0%" in text
        assert "dp0" in text and "dp1" in text
        assert "scale-up" in text

    def test_autoscale_event_detection(self):
        frames = frames_from_rows([
            _registry_row(30.0, n_dps=1), _registry_row(60.0, n_dps=3),
            _registry_row(90.0, n_dps=2)])
        events = _autoscale_events(frames)
        assert "t=60s scale-up: 1 -> 3 DPs" in events
        assert "t=90s scale-down: 3 -> 2 DPs" in events

    def test_dp_down_event(self):
        a = _registry_row(30.0)
        b = _registry_row(60.0)
        b["gauges"]["dp.online.dp1"] = 0.0
        events = _autoscale_events(frames_from_rows([a, b]))
        assert any("dp1 went DOWN" in e for e in events)


def _write_timeline(path, rows, meta=None):
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(
            {"meta": meta or {"interval_s": 30.0, "name": "t",
                              "seed": 1, "duration_s": 90.0}}) + "\n")
        for r in rows:
            fh.write(json.dumps(r) + "\n")


class TestReplay:
    def test_replay_renders_every_frame(self, tmp_path):
        p = tmp_path / "t.jsonl"
        _write_timeline(str(p), [_registry_row(t) for t in (30.0, 60.0,
                                                            90.0)])
        out = io.StringIO()
        n = replay(str(p), out=out)
        assert n == 3
        assert out.getvalue().count("digruber top") == 3

    def test_replay_once_renders_final_frame_only(self, tmp_path):
        p = tmp_path / "t.jsonl"
        _write_timeline(str(p), [_registry_row(30.0, n_dps=1),
                                 _registry_row(60.0, n_dps=2)])
        out = io.StringIO()
        assert replay(str(p), once=True, out=out) == 1
        text = out.getvalue()
        assert text.count("digruber top") == 1
        assert "t=60s" in text
        assert "scale-up" in text  # events computed over full history

    def test_replay_empty_file(self, tmp_path):
        p = tmp_path / "t.jsonl"
        _write_timeline(str(p), [])
        out = io.StringIO()
        assert replay(str(p), out=out) == 0
        assert "no timeline rows" in out.getvalue()

    def test_replay_max_frames(self, tmp_path):
        p = tmp_path / "t.jsonl"
        _write_timeline(str(p), [_registry_row(float(t)) for t in
                                 range(30, 300, 30)])
        out = io.StringIO()
        assert replay(str(p), out=out, max_frames=2) == 2


class TestTail:
    def test_partial_trailing_line_stays_buffered(self, tmp_path):
        p = tmp_path / "t.jsonl"
        full = json.dumps(_registry_row(30.0))
        half = json.dumps(_registry_row(60.0))
        with open(p, "w") as w:
            w.write(full + "\n" + half[: len(half) // 2])
            w.flush()
            with open(p, "r") as r:
                it = iter_jsonl_tail(r, poll_s=0.001, idle_polls=2)
                assert next(it)["t"] == 30.0
                # Writer completes the half row: reader resumes cleanly.
                w.write(half[len(half) // 2:] + "\n")
                w.flush()
                assert next(it)["t"] == 60.0
                assert list(it) == []  # idles out

    def test_garbage_lines_skipped(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text('{"t": 1.0}\nnot json\n{"t": 2.0}\n')
        with open(p) as fh:
            docs = list(iter_jsonl_tail(fh, poll_s=0.001, idle_polls=1))
        assert [d["t"] for d in docs] == [1.0, 2.0]

    def test_follow_renders_rows_and_stops_when_idle(self, tmp_path):
        p = tmp_path / "t.jsonl"
        _write_timeline(str(p), [_registry_row(30.0),
                                 _registry_row(60.0)])
        out = io.StringIO()
        n = follow(str(p), poll_s=0.001, idle_polls=2, out=out)
        assert n == 2
        assert out.getvalue().count("digruber top") == 2

    def test_follow_groups_sharded_rows_by_barrier(self, tmp_path):
        p = tmp_path / "t.jsonl"
        _write_timeline(str(p), [_hood_row(30.0, 0), _hood_row(30.0, 1),
                                 _hood_row(60.0, 0), _hood_row(60.0, 1)])
        out = io.StringIO()
        # The trailing barrier can't know it is complete until more
        # rows arrive, so a finished 2-barrier file renders 1 frame.
        n = follow(str(p), poll_s=0.001, idle_polls=2, out=out)
        assert n == 1
        assert "hood0" in out.getvalue()
