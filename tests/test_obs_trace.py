"""Unit tests for the structured tracer (repro.obs.trace)."""

import json

import pytest

from repro.obs import JsonlSink, TraceEvent, Tracer
from repro.sim import Simulator


class TestTracerBasics:
    def test_disabled_by_default_and_emit_is_noop(self):
        tr = Tracer()
        tr.emit("x.y", node="n", a=1)
        tr.emit_compact("rpc.span", "n", ("op", "d", 1, "ok", 0.1, 2.0))
        assert len(tr) == 0 and tr.counts == {} and tr.emitted == 0

    def test_emit_records_time_node_kind_detail(self):
        t = [0.0]
        tr = Tracer(clock=lambda: t[0], enabled=True)
        t[0] = 3.5
        tr.emit("job.start", node="dp0", job="j1", cpus=4)
        (ev,) = tr.events()
        assert ev == TraceEvent(3.5, "dp0", "job.start",
                                {"job": "j1", "cpus": 4})
        assert tr.count("job.start") == 1

    def test_events_filter_by_kind(self):
        tr = Tracer(enabled=True)
        tr.emit("a")
        tr.emit("b")
        tr.emit("a")
        assert len(tr.events("a")) == 2 and len(tr.events("b")) == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
        with pytest.raises(ValueError):
            Tracer().set_capacity(-1)

    def test_clear_resets_everything(self):
        tr = Tracer(enabled=True)
        tr.emit("a")
        tr.clear()
        assert len(tr) == 0 and tr.counts == {} and tr.evicted == 0


class TestRingBuffer:
    def test_eviction_keeps_newest_and_counts_all(self):
        tr = Tracer(enabled=True, capacity=4)
        for i in range(10):
            tr.emit("tick", i=i)
        assert len(tr) == 4
        assert tr.evicted == 6
        assert tr.count("tick") == 10  # counts survive eviction
        assert [ev.detail["i"] for ev in tr.events()] == [6, 7, 8, 9]

    def test_set_capacity_keeps_newest(self):
        tr = Tracer(enabled=True, capacity=10)
        for i in range(6):
            tr.emit("tick", i=i)
        tr.set_capacity(3)
        assert [ev.detail["i"] for ev in tr.events()] == [3, 4, 5]


class TestCompactEvents:
    def test_compact_normalized_on_inspection(self):
        tr = Tracer(enabled=True)
        tr.emit_compact("rpc.span", "cli",
                        ("query", "dp0", 7, "ok", 0.25, 18.0), time=1.5)
        (ev,) = tr.events()
        assert isinstance(ev, TraceEvent)
        assert ev.time == 1.5 and ev.node == "cli" and ev.kind == "rpc.span"
        assert ev.detail_dict() == {"op": "query", "dst": "dp0", "rpc_id": 7,
                                    "outcome": "ok", "latency_s": 0.25,
                                    "size_kb": 18.0}

    def test_compact_uses_clock_when_no_time_given(self):
        tr = Tracer(clock=lambda: 9.0, enabled=True)
        tr.emit_compact("rpc.span", "n", ("op", "d", 1, "ok", 0.1, 0.0))
        assert tr.events()[0].time == 9.0

    def test_unknown_compact_kind_falls_back(self):
        ev = TraceEvent(0.0, "n", "custom.kind", ("x", "y"))
        assert ev.detail_dict() == {"detail": ("x", "y")}


class TestSinks:
    def test_sink_sees_every_event_as_trace_event(self):
        tr = Tracer(enabled=True, capacity=2)
        seen = []
        tr.add_sink(seen.append)
        for i in range(5):
            tr.emit("a", i=i)
        tr.emit_compact("rpc.span", "n", ("op", "d", 1, "ok", 0.1, 0.0))
        assert len(seen) == 6  # beyond ring capacity
        assert all(isinstance(ev, TraceEvent) for ev in seen)

    def test_remove_sink(self):
        tr = Tracer(enabled=True)
        seen = []
        sink = seen.append
        tr.add_sink(sink)
        tr.emit("a")
        tr.remove_sink(sink)
        tr.emit("a")
        assert len(seen) == 1

    def test_jsonl_sink_streams_and_survives_close(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tr = Tracer(enabled=True)
        sink = JsonlSink(str(path))
        tr.add_sink(sink)
        tr.emit("a", n=1)
        tr.emit_compact("rpc.span", "cli", ("op", "d", 1, "ok", 0.1, 2.0))
        sink.close()
        tr.emit("late")  # post-close emission must not raise
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert sink.written == 2 and len(lines) == 2
        assert lines[0]["kind"] == "a" and lines[0]["n"] == 1
        assert lines[1]["op"] == "op" and lines[1]["outcome"] == "ok"

    def test_jsonl_sink_serializes_numpy_tuple_detail(self, tmp_path):
        # Regression: rpc.span tuple details carry numpy scalars
        # (latency draws, np-typed rpc ids) straight off the hot path;
        # json.dumps(np.int64) raises TypeError, so before coercion any
        # seeded run with a sink attached crashed on the first RPC.
        np = pytest.importorskip("numpy")
        path = tmp_path / "trace.jsonl"
        tr = Tracer(enabled=True)
        sink = JsonlSink(str(path))
        tr.add_sink(sink)
        tr.emit_compact(
            "rpc.span", ("dp0", 1),
            ("get_state", np.str_("dp1"), np.int64(3), "ok",
             np.float64(0.25), np.float32(2.0)),
            time=np.float32(2.0))
        sink.close()
        (line,) = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert line["t"] == 2.0
        assert line["node"] == str(("dp0", 1))
        assert line["rpc_id"] == 3 and line["dst"] == "dp1"
        assert line["latency_s"] == 0.25
        assert line["size_kb"] == pytest.approx(2.0)

    def test_export_jsonl_dumps_ring(self, tmp_path):
        path = tmp_path / "dump.jsonl"
        tr = Tracer(enabled=True)
        tr.emit("a", obj=object())  # non-JSON detail falls back to repr
        tr.emit_compact("rpc.span", "n", ("op", "d", 1, "ok", 0.1, 0.0))
        assert tr.export_jsonl(str(path)) == 2
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert lines[0]["obj"].startswith("<object")
        assert lines[1]["kind"] == "rpc.span"


class TestSimulatorIntegration:
    def test_sim_trace_uses_sim_clock(self):
        sim = Simulator()
        sim.trace.enabled = True
        sim.schedule(5.0, lambda: sim.trace.emit("mark"))
        sim.run()
        assert sim.trace.events("mark")[0].time == 5.0

    def test_process_lifecycle_traced(self):
        sim = Simulator()
        sim.trace.enabled = True

        def proc():
            yield 1.0

        sim.process(proc(), name="worker")
        sim.run()
        assert sim.trace.count("process.start") == 1
        assert sim.trace.count("process.finish") == 1

    def test_unhandled_process_failure_counted(self):
        sim = Simulator()
        sim.trace.enabled = True

        def proc():
            yield 1.0
            raise RuntimeError("die")

        sim.process(proc(), name="bad")
        sim.run()
        assert sim.metrics.counter_value("kernel.unhandled_failures") == 1
        assert sim.trace.count("process.unhandled_failure") == 1
