"""Regression tests for the bugs the correctness plane flushed out.

Each test here failed against the pre-fix code:

1. **Preemption accounting** — ``fail_running_job`` freed CPUs but
   never counted the failure or credited the partial run's CPU-seconds,
   so the busy integral stopped decomposing into per-VO delivery.
2. **Stale completion timer** — a job preempted and re-planned onto
   the *same* site was completed by the first incarnation's timer,
   truncating the second run to the old deadline.
3. **Stale policy cache** — a negotiator publishing straight into the
   USLA store left the engine answering availability queries from
   stale entitlements (no invalidation on the direct-store path).
4. **Sync relay horizon** — the flood cutoff was a fixed
   ``now - 2*interval``, silently dropping records from multi-hop
   relays whenever jitter spaced consecutive ticks further apart.
5. **Dead-DP watch churn** — failover left the dead decision point in
   the saturation detector, re-raising "down" (and re-running
   evacuation) on every sampling pass forever.
"""

import pytest

from repro.core import (
    DIGruberDeployment,
    DecisionPoint,
    GruberEngine,
    ReconfigurationObserver,
    SaturationDetector,
)
from repro.grid import Cluster, GridBuilder, Job, JobState, Site
from repro.net import ConstantLatency, GT3_PROFILE, Network
from repro.sim import RngRegistry, Simulator
from repro.usla import Agreement, AgreementContext, ServiceTerm
from repro.usla.fairshare import FairShareRule, ShareKind
from repro.usla.store import UslaStore


@pytest.fixture
def sim():
    return Simulator()


def make_site(sim, cpus=8, name="s0"):
    return Site(sim, name, [Cluster(f"{name}-c0", cpus)])


def make_job(cpus=1, duration=100.0, vo="vo0"):
    return Job(vo=vo, group="g0", user="u0", cpus=cpus, duration_s=duration)


class TestPreemptionAccounting:
    """Bug 1: fail_running_job must keep the conservation ledger whole."""

    def test_failure_counted_and_partial_run_credited(self, sim):
        site = make_site(sim)
        job = make_job(cpus=4, duration=100.0)
        site.submit(job)
        sim.run(until=30.0)
        site.fail_running_job(job.jid)
        assert site.jobs_failed == 1
        # 30 s on 4 CPUs were genuinely delivered before the kill.
        assert site.vo_cpu_seconds["vo0"] == pytest.approx(120.0)

    def test_ledger_balances_after_preemption(self, sim):
        site = make_site(sim)
        jobs = [make_job(cpus=2, duration=100.0) for _ in range(3)]
        for j in jobs:
            site.submit(j)
        sim.run(until=40.0)
        site.fail_running_job(jobs[1].jid)
        sim.run()
        assert site.jobs_dispatched == 3
        assert (site.jobs_completed + site.jobs_failed
                + site.running_jobs + site.queue_length) == 3

    def test_oversized_rejection_not_in_ledger(self, sim):
        site = make_site(sim, cpus=2)
        site.submit(make_job(cpus=64))
        assert site.jobs_rejected == 1
        assert site.jobs_dispatched == 0

    def test_integral_decomposes_after_preempt(self, sim):
        site = make_site(sim)
        job = make_job(cpus=4, duration=100.0)
        site.submit(job)
        other = make_job(cpus=2, duration=60.0)
        site.submit(other)
        sim.run(until=30.0)
        site.fail_running_job(job.jid)
        sim.run()
        site._advance_integral()
        assert site._busy_integral == pytest.approx(
            sum(site.vo_cpu_seconds.values()))


class TestStaleCompletionTimer:
    """Bug 2: replanning to the same site must outlive the old timer."""

    def test_replanned_job_runs_full_duration(self, sim):
        site = make_site(sim)
        job = make_job(cpus=2, duration=100.0)
        site.submit(job)
        sim.run(until=40.0)
        site.fail_running_job(job.jid)
        job.reset_for_replan()
        site.submit(job)  # Euryale re-plans back onto the same site
        sim.run()
        # Pre-fix: the t=100 timer from the first incarnation completed
        # the job 60 s early (execution 60 s instead of 100 s).
        assert job.state == JobState.COMPLETED
        assert job.completed_at == pytest.approx(140.0)
        assert job.execution_time_s == pytest.approx(100.0)

    def test_stale_timer_does_not_break_accounting(self, sim):
        site = make_site(sim)
        job = make_job(cpus=2, duration=100.0)
        site.submit(job)
        sim.run(until=40.0)
        site.fail_running_job(job.jid)
        job.reset_for_replan()
        site.submit(job)
        sim.run(until=110.0)  # past the stale deadline, before the real one
        assert job.state == JobState.RUNNING
        assert site.busy_cpus == 2
        sim.run()
        assert site.busy_cpus == 0
        assert site.jobs_completed == 1

    def test_normal_completion_unaffected(self, sim):
        site = make_site(sim)
        job = make_job(duration=30.0)
        site.submit(job)
        sim.run()
        assert job.completed_at == pytest.approx(30.0)


class TestStalePolicyCache:
    """Bug 3: direct store mutations must invalidate the policy cache."""

    def _engine(self):
        store = UslaStore("dp0")
        return GruberEngine("dp0", {"s0": 100}, usla_store=store,
                            usla_aware=True), store

    @staticmethod
    def _cap(store, percent, version=1):
        store.publish(Agreement(
            name="cap-vo0", version=version,
            context=AgreementContext(provider="s0", consumer="vo0"),
            terms=[ServiceTerm("cpu-share",
                               FairShareRule("s0", "vo0", percent,
                                             ShareKind.UPPER_LIMIT))]))

    def test_publish_after_warm_cache_respected(self):
        engine, store = self._engine()
        # Warm the cache with no agreements: full headroom.
        assert engine.availabilities(vo="vo0", now=0.0)["s0"] == 100.0
        # Negotiator path: straight into the store, no engine call.
        self._cap(store, 40.0)
        # Pre-fix this still answered 100.0 from the stale cache.
        assert engine.availabilities(vo="vo0", now=0.0)["s0"] == 40.0

    def test_republish_tightens_entitlement(self):
        engine, store = self._engine()
        self._cap(store, 40.0)
        assert engine.availabilities(vo="vo0", now=0.0)["s0"] == 40.0
        self._cap(store, 10.0, version=2)
        assert engine.availabilities(vo="vo0", now=0.0)["s0"] == 10.0

    def test_remove_restores_headroom(self):
        engine, store = self._engine()
        self._cap(store, 40.0)
        assert engine.availabilities(vo="vo0", now=0.0)["s0"] == 40.0
        store.remove("cap-vo0")
        assert engine.availabilities(vo="vo0", now=0.0)["s0"] == 100.0

    def test_mutation_counter_moves_only_on_change(self):
        store = UslaStore("dp0")
        base = store.mutations
        store.remove("absent")          # no-op removal
        assert store.mutations == base
        assert store.merge_from([]) == 0
        assert store.mutations == base


@pytest.fixture
def env():
    sim = Simulator()
    rng = RngRegistry(9)
    net = Network(sim, ConstantLatency(0.05))
    grid = GridBuilder(sim, rng.stream("grid")).uniform(
        n_sites=4, cpus_per_site=16)
    return sim, rng, net, grid


class TestSyncRelayHorizon:
    """Bug 4: the flood cutoff must track actual tick times."""

    def test_jittered_spacing_still_relays(self, env):
        # Ticks spaced 25 s apart with a 10 s nominal interval: a record
        # learned between ticks lands outside the old fixed
        # ``now - 2*interval`` horizon and was silently dropped.
        sim, rng, net, grid = env
        mk = lambda nid: DecisionPoint(  # noqa: E731
            sim, net, nid, grid, GT3_PROFILE, rng.stream(f"dp:{nid}"),
            monitor_interval_s=1e9, sync_interval_s=10.0)
        dp0, dp1 = mk("dp0"), mk("dp1")
        dp0.set_neighbors(["dp1"])
        dp1.set_neighbors(["dp0"])
        for t in (0.5, 25.0, 50.0):
            sim.schedule_at(t, dp0.sync.tick)
        sim.schedule_at(
            26.0, lambda: dp0.engine.record_local_dispatch(
                site=grid.site_names[0], vo="vo0", cpus=2, now=26.0))
        sim.run(until=60.0)
        # The t=50 tick must flood the t=26 record (cutoff = previous
        # tick's predecessor at t=0.5, not 50 - 2*10 = 30).
        assert dp1.sync.records_adopted == 1
        assert ("dp0", 1) in dp1.engine.view._seen

    def test_record_flooded_exactly_two_rounds(self, env):
        sim, rng, net, grid = env
        mk = lambda nid: DecisionPoint(  # noqa: E731
            sim, net, nid, grid, GT3_PROFILE, rng.stream(f"dp:{nid}"),
            monitor_interval_s=1e9, sync_interval_s=10.0)
        dp0, dp1 = mk("dp0"), mk("dp1")
        dp0.set_neighbors(["dp1"])
        dp1.set_neighbors(["dp0"])
        dp0.engine.record_local_dispatch(site=grid.site_names[0],
                                         vo="vo0", cpus=1, now=0.0)
        for t in (1.0, 11.0, 21.0, 31.0, 41.0):
            sim.schedule_at(t, dp0.sync.tick)
        sim.run(until=60.0)
        # Sent on the first two rounds (dedup makes one adoption), then
        # aged past the two-tick relay horizon.
        assert dp0.sync.records_sent == 2
        assert dp1.sync.records_received == 2
        assert dp1.sync.records_adopted == 1

    def test_ring_overlay_two_hop_relay_under_jitter(self, env):
        # The end-to-end shape of the bug: on a ring, records travel
        # one hop per tick and *must* be re-flooded by the middle hop.
        # Jitter of the same magnitude as the interval spaces ticks
        # beyond the old horizon.
        sim, rng, net, grid = env
        dep = DIGruberDeployment(sim, net, grid, GT3_PROFILE, rng,
                                 n_decision_points=5,
                                 topology_kind="ring",
                                 sync_interval_s=10.0,
                                 monitor_interval_s=1e9)
        for dp in dep.decision_points.values():
            dp.sync.jitter_s = 15.0  # >= interval: the failing regime
        dep.start()
        sim.schedule_at(
            12.0, lambda: dep.dp("dp0").engine.record_local_dispatch(
                site=grid.site_names[0], vo="vo0", cpus=2, now=12.0))
        sim.run(until=240.0)
        # dp2 and dp3 are both two hops from dp0 on the 5-ring; the
        # record must reach every decision point.
        for dp_id, dp in dep.decision_points.items():
            assert ("dp0", 1) in dp.engine.view._seen, \
                f"{dp_id} never learned dp0's record"


class TestDeadDpWatchChurn:
    """Bug 5: failover unwatches the dead DP; restart re-arms the watch."""

    def _setup(self, env, k=3):
        sim, rng, net, grid = env
        dep = DIGruberDeployment(sim, net, grid, GT3_PROFILE, rng,
                                 n_decision_points=k,
                                 monitor_interval_s=1e9,
                                 sync_interval_s=1e9)
        dep.start()
        det = SaturationDetector(sim, dep.decision_points.values(),
                                 interval_s=30.0)
        det.start()
        obs = ReconfigurationObserver(sim, dep, det, cooldown_s=1e9)
        return sim, dep, det, obs

    def test_down_signal_raised_once_not_every_pass(self, env):
        sim, dep, det, obs = self._setup(env)
        dep.dp("dp1").crash()
        sim.run(until=400.0)  # ~13 sampling passes
        downs = [s for s in det.signals
                 if s.reason == "down" and s.decision_point == "dp1"]
        # Pre-fix: one "down" per pass (13 of them), each re-running
        # the failover path.
        assert len(downs) == 1

    def test_restart_rearms_the_watch(self, env):
        sim, dep, det, obs = self._setup(env)
        dep.dp("dp1").crash()
        sim.run(until=100.0)
        assert not any(str(d.node_id) == "dp1"
                       for d in det.decision_points)
        dep.dp("dp1").restart()
        sim.run(until=130.0)
        assert any(str(d.node_id) == "dp1" for d in det.decision_points)
        # A second crash is detected again — the watch really is live.
        dep.dp("dp1").crash()
        sim.run(until=400.0)
        downs = [s for s in det.signals
                 if s.reason == "down" and s.decision_point == "dp1"]
        assert len(downs) == 2

    def test_restart_does_not_double_watch(self, env):
        sim, dep, det, obs = self._setup(env)
        dep.dp("dp1").crash()
        sim.run(until=100.0)
        dep.dp("dp1").restart()
        dep.dp("dp1").restart()  # idempotent rewatch across restarts
        watched = [d for d in det.decision_points
                   if str(d.node_id) == "dp1"]
        assert len(watched) == 1

    def test_crash_without_restart_stays_quiet(self, env):
        sim, dep, det, obs = self._setup(env)
        dep.dp("dp2").crash()
        sim.run(until=1000.0)
        failovers = [e for e in obs.events if e.action == "failover"]
        # Nothing attached to dp2, so no failover event either — and
        # crucially no endless re-evacuation attempts.
        assert len(failovers) <= 1
