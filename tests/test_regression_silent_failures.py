"""Regression tests for three formerly-silent failure paths.

Each test encodes a pre-fix failure mode and fails on the old code:

* ``Simulator.every`` — an exception in the periodic fn killed the
  chain silently (the reschedule only happened after a successful
  call), so one bad sync round permanently desynchronized a broker;
* ``Network.rpc`` — a completed RPC left its timeout ScheduledCall
  ticking in the heap, and a lost request/response with no timeout
  armed leaked its ``_pending_rpcs`` entry forever; caller timeouts
  were also invisible in ``stats.rpcs_failed``;
* ``GruberEngine.availabilities`` — with ``now`` omitted, stale
  dispatch records never aged out of ``estimated_vo_busy``, zeroing
  USLA headroom forever.
"""

import pytest

from repro.core import DispatchRecord, GridStateView, GruberEngine
from repro.net import ConstantLatency, Endpoint, Network, RpcTimeout
from repro.sim import Simulator
from repro.usla import (
    Agreement,
    AgreementContext,
    FairShareRule,
    ServiceTerm,
    ShareKind,
)


@pytest.fixture
def sim():
    return Simulator()


# -- Simulator.every: errors must not kill the periodic chain -----------------

class TestEveryErrorPolicy:
    def test_record_keeps_chain_alive(self, sim):
        calls = []

        def fn():
            calls.append(sim.now)
            if len(calls) == 2:
                raise RuntimeError("one bad round")

        sim.every(1.0, fn, on_error="record")
        sim.run(until=5.5)
        # Pre-fix the tick at t=2 died without rescheduling: calls == 2.
        assert len(calls) == 5
        assert sim.metrics.counter_value("kernel.periodic_errors") == 1

    def test_raise_propagates_but_chain_survives(self, sim):
        calls = []

        def fn():
            calls.append(sim.now)
            if len(calls) == 2:
                raise RuntimeError("boom")

        sim.every(1.0, fn)  # default on_error="raise"
        with pytest.raises(RuntimeError, match="boom"):
            sim.run(until=5.5)
        # The next tick was rescheduled before the raise escaped, so
        # resuming the loop continues the chain (pre-fix it was dead).
        sim.run(until=5.5)
        assert len(calls) == 5

    def test_error_traced_with_timer_name(self, sim):
        sim.trace.enabled = True

        def fn():
            raise ValueError("nope")

        sim.every(1.0, fn, on_error="record", name="sync:dp0")
        sim.run(until=2.5)
        events = sim.trace.events("periodic.error")
        assert len(events) == 2
        assert events[0].node == "sync:dp0"
        assert "ValueError" in events[0].detail["error"]

    def test_on_error_callable(self, sim):
        seen = []

        def fn():
            raise KeyError("k")

        sim.every(1.0, fn, on_error=seen.append)
        sim.run(until=3.5)
        assert len(seen) == 3 and all(isinstance(e, KeyError) for e in seen)

    def test_invalid_policy_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.every(1.0, lambda: None, on_error="ignore")

    def test_cancel_wins_over_error_reschedule(self, sim):
        handle_box = {}

        def fn():
            handle_box["h"].cancel()
            raise RuntimeError("last gasp")

        handle_box["h"] = sim.every(1.0, fn, on_error="record")
        sim.run(until=10.0)
        assert sim.metrics.counter_value("kernel.periodic_errors") == 1


# -- Network.rpc: no leaked pending entries, no stray timeout calls ----------

class _ScriptedRng:
    """Deterministic .random() values for loss injection."""

    def __init__(self, values):
        self._values = list(values)

    def random(self):
        return self._values.pop(0) if self._values else 1.0


class TestRpcBookkeeping:
    def _echo_pair(self, net):
        Endpoint(net, "a")
        server = Endpoint(net, "b")
        server.register_handler("echo", lambda payload, src: payload)
        return server

    def test_timeout_call_cancelled_on_completion(self, sim):
        net = Network(sim, ConstantLatency(0.1))
        self._echo_pair(net)
        ev = net.rpc("a", "b", "echo", 42, timeout=1000.0)
        sim.run()
        assert ev.ok and ev.value == 42
        # Pre-fix the armed timeout stayed in the heap and the run
        # only ended once the clock reached it.
        assert sim.now < 1.0
        assert net._pending_rpcs == {}

    def test_timeout_counted_as_failure(self, sim):
        net = Network(sim, ConstantLatency(0.1))
        server = self._echo_pair(net)
        server.online = False
        ev = net.rpc("a", "b", "echo", 1, timeout=5.0)
        sim.run()
        assert ev.ok is False and isinstance(ev.value, RpcTimeout)
        assert net.stats.rpcs_failed == 1       # pre-fix: 0
        assert net.stats.rpcs_timed_out == 1
        assert net._pending_rpcs == {}

    def test_lost_request_without_timeout_reaped(self, sim):
        net = Network(sim, ConstantLatency(0.1), loss_rate=0.5,
                      loss_rng=_ScriptedRng([0.0]))  # request dropped
        self._echo_pair(net)
        ev = net.rpc("a", "b", "echo", 1)
        sim.run()
        assert not ev.triggered  # caller hangs, like a crashed peer
        assert net._pending_rpcs == {}          # pre-fix: leaked forever
        assert net.stats.rpcs_lost == 1
        assert net.stats.rpcs_failed == 1

    def test_lost_response_without_timeout_reaped(self, sim):
        net = Network(sim, ConstantLatency(0.1), loss_rate=0.5,
                      loss_rng=_ScriptedRng([0.9, 0.0]))  # response dropped
        self._echo_pair(net)
        ev = net.rpc("a", "b", "echo", 1)
        sim.run()
        assert not ev.triggered
        assert net._pending_rpcs == {}
        assert net.stats.rpcs_lost == 1

    def test_offline_endpoint_without_timeout_reaped(self, sim):
        net = Network(sim, ConstantLatency(0.1))
        server = self._echo_pair(net)
        server.online = False
        net.rpc("a", "b", "echo", 1)
        sim.run()
        assert net._pending_rpcs == {}
        assert net.stats.rpcs_lost == 1

    def test_lost_response_with_timeout_not_double_counted(self, sim):
        net = Network(sim, ConstantLatency(0.1), loss_rate=0.5,
                      loss_rng=_ScriptedRng([0.9, 0.0]))
        self._echo_pair(net)
        ev = net.rpc("a", "b", "echo", 1, timeout=5.0)
        sim.run()
        # The armed timeout reaps the entry; the response loss must not
        # also fail it (one RPC, one failure).
        assert isinstance(ev.value, RpcTimeout)
        assert net.stats.rpcs_failed == 1
        assert net.stats.rpcs_timed_out == 1
        assert net.stats.rpcs_lost == 0
        assert net._pending_rpcs == {}


# -- VO-busy staleness: headroom must recover when records age out -----------

def _publish_share(engine, provider, consumer, pct):
    ag = Agreement(
        name=f"{provider}-{consumer}",
        context=AgreementContext(provider=provider, consumer=consumer),
        terms=[ServiceTerm("cpu", FairShareRule(
            provider, consumer, pct, ShareKind.UPPER_LIMIT))],
    )
    engine.usla_store.publish(ag)
    engine.invalidate_policy_cache()


class TestVoBusyExpiry:
    def test_availabilities_default_now_expires_stale_records(self):
        engine = GruberEngine("dp0", {"s0": 100, "s1": 50}, usla_aware=True,
                              assumed_job_lifetime_s=900.0)
        _publish_share(engine, "s0", "atlas", 20.0)
        engine.record_local_dispatch("s0", "atlas", cpus=20, now=0.0)
        assert engine.availabilities(vo="atlas")["s0"] == 0.0  # exhausted

        # Knowledge moves on: a peer record learned at t=2000 advances
        # the view's horizon far past the t=0 dispatch's lifetime.
        peer = GruberEngine("dp1", {"s0": 100, "s1": 50})
        rec = peer.record_local_dispatch("s1", "cms", cpus=1, now=1500.0)
        engine.merge_remote_records([rec], now=2000.0)

        # Pre-fix: availabilities() with now omitted never expired the
        # stale record, so atlas stayed pinned at zero headroom forever.
        assert engine.availabilities(vo="atlas")["s0"] == 20.0

    def test_estimated_vo_busy_explicit_now_expires(self):
        view = GridStateView({"s0": 100}, assumed_job_lifetime_s=900.0)
        view.apply_record(DispatchRecord(origin="dp0", seq=0, site="s0",
                                         vo="atlas", cpus=10, time=0.0))
        assert view.estimated_vo_busy("s0", "atlas") == 10.0
        assert view.estimated_vo_busy("s0", "atlas", now=1000.0) == 0.0
        # Free counts and VO attribution age out together.
        assert view.free_map(now=1000.0)["s0"] == 100.0

    def test_latest_time_tracks_all_knowledge_sources(self):
        view = GridStateView({"s0": 100})
        view.apply_record(DispatchRecord(origin="dp0", seq=0, site="s0",
                                         vo="atlas", cpus=1, time=5.0))
        assert view.latest_time == 5.0
        view.refresh_site("s0", busy_cpus=0.0, now=42.0)
        assert view.latest_time == 42.0
        view.expire(100.0)
        assert view.latest_time == 100.0
