"""Tests for repro.resilience: backoff, breaker, failover, client wiring."""

import numpy as np
import pytest

from repro.core import DecisionPoint, DIGruberDeployment, GruberClient, \
    LeastUsedSelector
from repro.grid import GridBuilder
from repro.net import ConstantLatency, GT3_PROFILE, Network
from repro.net.container import ContainerProfile
from repro.resilience import CircuitBreaker, FailoverManager, ResilienceConfig
from repro.sim import RngRegistry, Simulator
from repro.workloads import HostWorkload, TraceRecorder

from tests.test_core_client import FAST_PROFILE

#: FAST_PROFILE with a slow dispatch report: the resync test needs the
#: pull_records handler to finish *after* a record lands on the peer.
SLOW_REPORT_PROFILE = ContainerProfile(
    name="slowreport", query_service_s=0.1, report_service_s=1.0,
    query_concurrency=1, query_rtts=1, client_overhead_s=0.1,
    instance_service_s=0.05, instance_concurrency=1, instance_rtts=1,
    instance_client_overhead_s=0.05, sigma=0.0)


@pytest.fixture
def env():
    sim = Simulator()
    rng = RngRegistry(8)
    net = Network(sim, ConstantLatency(0.05))
    grid = GridBuilder(sim, rng.stream("grid")).uniform(n_sites=4,
                                                        cpus_per_site=50)
    return sim, rng, net, grid


def advance(sim, dt):
    """Move the DES clock forward by dt."""
    target = sim.now + dt
    sim.schedule(dt, lambda: None)
    sim.run(until=target)


def make_workload(grid, host, arrivals, duration_s=50.0):
    """A fully deterministic workload: explicit arrival instants."""
    vo = next(iter(grid.vos))
    group = next(iter(vo.groups.values()))
    n = len(arrivals)
    return HostWorkload(
        host=host, arrivals=np.asarray(arrivals, dtype=float),
        vo_names=[vo.name] * n, group_names=[group.name] * n,
        user_names=["u"] * n, cpus=np.ones(n, dtype=int),
        durations=np.full(n, duration_s))


def make_client(sim, net, grid, rng, dp_id="dp0", arrivals=(10.0,),
                timeout_s=5.0, resilience=None, failover=None):
    client = GruberClient(
        sim, net, "h0", dp_id, grid,
        make_workload(grid, "h0", list(arrivals)),
        selector=LeastUsedSelector(rng.stream("sel")),
        profile=FAST_PROFILE, rng=rng.stream("cli"),
        trace=TraceRecorder(), timeout_s=timeout_s,
        state_response_kb=0.0, resilience=resilience, failover=failover)
    client.start()
    return client


class TestResilienceConfig:
    def test_defaults_valid(self):
        ResilienceConfig()

    @pytest.mark.parametrize("bad", [
        {"max_attempts": 0},
        {"attempt_timeout_s": -1.0},
        {"backoff_base_s": -1.0},
        {"backoff_factor": 0.5},
        {"backoff_jitter": 1.5},
        {"breaker_threshold": 0},
        {"breaker_open_s": -1.0},
        {"probe_interval_s": 0.0},
        {"probe_unhealthy_after": 0},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ResilienceConfig(**bad)

    def test_backoff_exponential_capped(self):
        cfg = ResilienceConfig(backoff_base_s=2.0, backoff_factor=2.0,
                               backoff_max_s=30.0, backoff_jitter=0.0)
        rng = np.random.default_rng(0)
        delays = [cfg.backoff_delay(a, rng) for a in range(1, 7)]
        assert delays == [2.0, 4.0, 8.0, 16.0, 30.0, 30.0]

    def test_backoff_jitter_bounded(self):
        cfg = ResilienceConfig(backoff_base_s=4.0, backoff_jitter=0.5)
        rng = np.random.default_rng(0)
        delays = [cfg.backoff_delay(1, rng) for _ in range(100)]
        assert all(4.0 <= d <= 6.0 for d in delays)
        assert len(set(delays)) > 50

    def test_backoff_attempt_one_based(self):
        with pytest.raises(ValueError):
            ResilienceConfig().backoff_delay(0, np.random.default_rng(0))


class TestCircuitBreaker:
    def _breaker(self, threshold=3, open_s=60.0):
        sim = Simulator()
        return sim, CircuitBreaker(sim, "h0", "dp0", threshold=threshold,
                                   open_s=open_s)

    def test_closed_allows(self):
        sim, br = self._breaker()
        assert br.state == "closed" and br.allow()

    def test_below_threshold_stays_closed(self):
        sim, br = self._breaker(threshold=3)
        br.on_failure()
        br.on_failure()
        assert br.state == "closed" and br.allow()

    def test_opens_at_threshold(self):
        sim, br = self._breaker(threshold=3)
        for _ in range(3):
            br.on_failure()
        assert br.state == "open"
        assert not br.allow()
        assert br.opened_count == 1
        assert sim.metrics.counter_value("breaker.opened") == 1

    def test_half_open_after_cooldown(self):
        sim, br = self._breaker(threshold=1, open_s=60.0)
        br.on_failure()
        assert not br.allow()
        advance(sim, 61.0)
        assert br.allow()             # the transition happens here
        assert br.state == "half_open"
        assert sim.metrics.counter_value("breaker.half_open") == 1

    def test_half_open_success_closes(self):
        sim, br = self._breaker(threshold=1, open_s=10.0)
        br.on_failure()
        advance(sim, 11.0)
        assert br.allow()
        br.on_success()
        assert br.state == "closed" and br.failures == 0
        assert sim.metrics.counter_value("breaker.closed") == 1

    def test_half_open_failure_reopens(self):
        sim, br = self._breaker(threshold=3, open_s=10.0)
        for _ in range(3):
            br.on_failure()
        advance(sim, 11.0)
        assert br.allow()
        br.on_failure()               # single failure: straight back open
        assert br.state == "open"
        assert br.opened_count == 2
        assert br.open_until == pytest.approx(sim.now + 10.0)

    def test_success_resets_failure_streak(self):
        sim, br = self._breaker(threshold=3)
        br.on_failure()
        br.on_failure()
        br.on_success()
        br.on_failure()
        br.on_failure()
        assert br.state == "closed"   # streak broken: never reached 3

    def test_state_transitions_traced(self):
        sim, br = self._breaker(threshold=1, open_s=5.0)
        sim.trace.enabled = True
        br.on_failure()
        advance(sim, 6.0)
        br.allow()
        br.on_success()
        states = [e.detail["state"] for e in sim.trace.events("breaker.state")]
        assert states == ["open", "half_open", "closed"]


class _ContainerStub:
    def __init__(self, queue_len):
        self.queue_len = queue_len


class _DpStub:
    def __init__(self, queue_len):
        self.container = _ContainerStub(queue_len)


class _DeploymentStub:
    def __init__(self, queues):
        self.decision_points = {d: _DpStub(q) for d, q in queues.items()}


class TestFailoverChoose:
    def _manager(self, queues):
        sim = Simulator()
        fm = FailoverManager(sim, None, _DeploymentStub(queues),
                             ResilienceConfig())
        return sim, fm

    def test_ranks_by_queue_then_id(self):
        sim, fm = self._manager({"dp0": 0, "dp1": 5, "dp2": 2})
        assert fm.choose("dp0") == "dp2"

    def test_id_breaks_queue_ties(self):
        sim, fm = self._manager({"dp0": 0, "dp1": 3, "dp2": 3})
        assert fm.choose("dp0") == "dp1"

    def test_skips_current(self):
        sim, fm = self._manager({"dp0": 0, "dp1": 9})
        assert fm.choose("dp0") == "dp1"

    def test_skips_unhealthy(self):
        sim, fm = self._manager({"dp0": 0, "dp1": 1, "dp2": 9})
        fm._misses["dp1"] = fm.policy.probe_unhealthy_after
        assert fm.choose("dp0") == "dp2"

    def test_respects_allow_predicate(self):
        sim, fm = self._manager({"dp0": 0, "dp1": 1, "dp2": 9})
        assert fm.choose("dp0", allow=lambda d: d != "dp1") == "dp2"

    def test_none_when_no_candidates(self):
        sim, fm = self._manager({"dp0": 0})
        assert fm.choose("dp0") is None


class TestFailoverProbing:
    def _stack(self, env, policy=None):
        sim, rng, net, grid = env
        policy = policy or ResilienceConfig(probe_interval_s=10.0,
                                            probe_timeout_s=3.0,
                                            probe_unhealthy_after=2)
        dep = DIGruberDeployment(sim, net, grid, FAST_PROFILE, rng,
                                 n_decision_points=2)
        fm = FailoverManager(sim, net, dep, policy)
        dep.start()
        fm.start()
        return sim, dep, fm

    def test_live_dps_stay_healthy(self, env):
        sim, dep, fm = self._stack(env)
        sim.run(until=45.0)
        assert fm.healthy("dp0") and fm.healthy("dp1")
        assert fm.probes_failed == 0
        assert fm.probes_sent >= 8
        assert sim.metrics.counter_value("failover.probes") == fm.probes_sent

    def test_dead_dp_marked_unhealthy(self, env):
        sim, dep, fm = self._stack(env)
        dep.dp("dp1").crash()
        sim.run(until=60.0)
        assert fm.healthy("dp0")
        assert not fm.healthy("dp1")
        assert fm.probes_failed >= 2
        assert sim.metrics.counter_value("failover.dp_unhealthy") == 1

    def test_restarted_dp_recovers(self, env):
        sim, dep, fm = self._stack(env)
        dep.dp("dp1").crash()
        sim.run(until=60.0)
        assert not fm.healthy("dp1")
        dep.dp("dp1").restart(resync=False)
        sim.run(until=100.0)
        assert fm.healthy("dp1")
        assert sim.metrics.counter_value("failover.dp_recovered") == 1

    def test_start_is_idempotent(self, env):
        sim, dep, fm = self._stack(env)
        fm.start()                      # second call: no duplicate ticker
        sim.run(until=25.0)
        assert fm.probes_sent == 4      # 2 dps x 2 ticks

    def test_probes_never_raise_into_kernel(self, env):
        sim, dep, fm = self._stack(env)
        dep.dp("dp0").crash()
        dep.dp("dp1").crash()
        sim.run(until=120.0)
        assert sim.metrics.counter_value("kernel.unhandled_failures") == 0
        assert sim.metrics.counter_value("kernel.periodic_errors") == 0


class TestDecisionPointCrashRestart:
    def _dp(self, env, profile=GT3_PROFILE, **kw):
        sim, rng, net, grid = env
        return DecisionPoint(sim, net, "dp0", grid, profile,
                             rng.stream("dp"), monitor_interval_s=600.0, **kw)

    def test_crash_idempotent_single_count(self, env):
        sim, rng, net, grid = env
        dp = self._dp(env)
        dp.start(neighbors=[])
        dp.crash()
        dp.crash()
        assert dp.crashes == 1
        assert sim.metrics.counter_value("dp.crashes") == 1

    def test_restart_idempotent_single_count(self, env):
        sim, rng, net, grid = env
        dp = self._dp(env)
        dp.start(neighbors=[])
        dp.crash()
        dp.restart(resync=False)
        dp.restart(resync=False)
        assert dp.online and dp.started
        assert dp.restarts == 1
        assert sim.metrics.counter_value("dp.restarts") == 1

    def test_restart_on_running_dp_is_noop(self, env):
        sim, rng, net, grid = env
        dp = self._dp(env)
        dp.start(neighbors=[])
        dp.restart()
        assert dp.restarts == 0

    def test_crash_restart_traced(self, env):
        sim, rng, net, grid = env
        sim.trace.enabled = True
        dp = self._dp(env)
        dp.start(neighbors=[])
        dp.crash()
        dp.restart(resync=False)
        assert len(sim.trace.events("dp.crash")) == 1
        restarts = sim.trace.events("dp.restart")
        assert len(restarts) == 1
        assert restarts[0].detail["resync"] is False

    def test_resync_adopts_post_restart_peer_records(self, env):
        """Records a peer learns after the restart sweep get adopted.

        The restart's initial monitor sweep resets the view's base time
        to the restart instant, so only records newer than that survive
        the merge — ground truth supersedes anything older.
        """
        sim, rng, net, grid = env
        dp0 = DecisionPoint(sim, net, "dp0", grid, SLOW_REPORT_PROFILE,
                            rng.stream("a"), monitor_interval_s=600.0,
                            sync_interval_s=1e6)
        dp1 = DecisionPoint(sim, net, "dp1", grid, SLOW_REPORT_PROFILE,
                            rng.stream("b"), monitor_interval_s=600.0,
                            sync_interval_s=1e6)
        dp0.start(neighbors=["dp1"])
        dp1.start(neighbors=["dp0"])
        sim.run(until=50.0)
        dp0.crash()
        # dp0 restarts at t=100; its pull_records request reaches dp1 at
        # ~100.05 and is answered at ~101.05 (1 s report service time).
        # The peer record lands at t=100.5: after the restart sweep, so
        # it survives the base-time filter, and before the pull response
        # is built, so it is included.
        sim.schedule_at(100.0, dp0.restart)
        sim.schedule_at(100.5, lambda: dp1.engine.record_local_dispatch(
            grid.site_names[0], "vo0", 4, now=sim.now))
        sim.run(until=300.0)
        assert dp0.resync_records == 1
        assert sim.metrics.counter_value("dp.resync_records") == 1
        assert dp0.resync_failures == 0

    def test_resync_rejects_downtime_records(self, env):
        """Records older than the restart sweep are ground-truth-superseded."""
        sim, rng, net, grid = env
        dp0 = DecisionPoint(sim, net, "dp0", grid, SLOW_REPORT_PROFILE,
                            rng.stream("a"), monitor_interval_s=600.0,
                            sync_interval_s=1e6)
        dp1 = DecisionPoint(sim, net, "dp1", grid, SLOW_REPORT_PROFILE,
                            rng.stream("b"), monitor_interval_s=600.0,
                            sync_interval_s=1e6)
        dp0.start(neighbors=["dp1"])
        dp1.start(neighbors=["dp0"])
        sim.run(until=50.0)
        dp0.crash()
        # The record lands during dp0's downtime: the post-restart sweep
        # at t=100 already reflects it, so resync must not double-count.
        sim.schedule_at(80.0, lambda: dp1.engine.record_local_dispatch(
            grid.site_names[0], "vo0", 4, now=sim.now))
        sim.schedule_at(100.0, dp0.restart)
        sim.run(until=300.0)
        assert dp0.resync_records == 0

    def test_resync_tolerates_dead_peer(self, env):
        sim, rng, net, grid = env
        dp0 = DecisionPoint(sim, net, "dp0", grid, GT3_PROFILE,
                            rng.stream("a"), monitor_interval_s=600.0,
                            sync_interval_s=1e6)
        dp1 = DecisionPoint(sim, net, "dp1", grid, GT3_PROFILE,
                            rng.stream("b"), monitor_interval_s=600.0,
                            sync_interval_s=1e6)
        dp0.start(neighbors=["dp1"])
        dp1.start(neighbors=["dp0"])
        dp0.crash()
        dp1.crash()
        sim.schedule_at(100.0, dp0.restart)
        sim.run(until=300.0)
        assert dp0.resync_failures == 1
        assert sim.metrics.counter_value("dp.resync_failures") == 1
        assert sim.metrics.counter_value("kernel.unhandled_failures") == 0


class TestClientRebind:
    def test_rebind_counts_and_traces(self, env):
        sim, rng, net, grid = env
        sim.trace.enabled = True
        dp = DecisionPoint(sim, net, "dp0", grid, FAST_PROFILE,
                           rng.stream("dp"), monitor_interval_s=600.0)
        dp.start(neighbors=[])
        client = make_client(sim, net, grid, rng, arrivals=())
        client.rebind("dp9")
        assert client.rebinds == 1
        assert client.decision_point == "dp9"
        assert sim.metrics.counter_value("client.rebinds") == 1
        ev = sim.trace.events("client.rebind")[0]
        assert ev.detail["prior"] == "dp0" and ev.detail["new"] == "dp9"

    def test_rebind_recovers_channel(self, env):
        """After rebinding away from a dead DP, brokering works again."""
        sim, rng, net, grid = env
        dp0 = DecisionPoint(sim, net, "dp0", grid, FAST_PROFILE,
                            rng.stream("a"), monitor_interval_s=600.0)
        dp1 = DecisionPoint(sim, net, "dp1", grid, FAST_PROFILE,
                            rng.stream("b"), monitor_interval_s=600.0)
        dp0.start(neighbors=[])
        dp1.start(neighbors=[])
        dp0.crash()
        # Job 1 (t=10) burns its timeout against dead dp0 and falls
        # back; the operator rebinds at t=100; job 2 (t=200) brokers
        # normally against dp1.
        client = make_client(sim, net, grid, rng, arrivals=(10.0, 200.0))
        sim.schedule_at(100.0, lambda: client.rebind("dp1"))
        sim.run(until=500.0)
        assert client.n_fallback_timeout == 1
        assert client.n_handled == 1
        assert client.rebinds == 1
        assert all(j.site is not None for j in client.jobs)


class TestResilientClient:
    def test_retry_recovers_after_restart(self, env):
        """A transient outage costs retries, not the brokered placement."""
        sim, rng, net, grid = env
        dp = DecisionPoint(sim, net, "dp0", grid, FAST_PROFILE,
                           rng.stream("dp"), monitor_interval_s=600.0)
        dp.start(neighbors=[])
        dp.crash()
        sim.schedule_at(30.0, lambda: dp.restart(resync=False))
        policy = ResilienceConfig(max_attempts=5, attempt_timeout_s=5.0,
                                  backoff_base_s=2.0, backoff_factor=2.0,
                                  backoff_max_s=10.0, backoff_jitter=0.0,
                                  breaker_threshold=10)
        client = make_client(sim, net, grid, rng, arrivals=(10.0,),
                             resilience=policy)
        sim.run(until=200.0)
        assert client.n_handled == 1
        assert client.n_fallback_timeout == 0
        assert client.n_retries >= 1
        assert sim.metrics.counter_value("client.retries") == client.n_retries
        assert client.jobs[0].handled_by_gruber

    def test_breaker_fastfails_then_falls_back(self, env):
        """A permanently dead DP: breaker opens, attempts stop burning
        timeouts, exhausted jobs still get (random) placements."""
        sim, rng, net, grid = env
        dp = DecisionPoint(sim, net, "dp0", grid, FAST_PROFILE,
                           rng.stream("dp"), monitor_interval_s=600.0)
        dp.start(neighbors=[])
        dp.crash()
        policy = ResilienceConfig(max_attempts=4, attempt_timeout_s=3.0,
                                  backoff_base_s=1.0, backoff_factor=1.0,
                                  backoff_max_s=1.0, backoff_jitter=0.0,
                                  breaker_threshold=2, breaker_open_s=300.0)
        client = make_client(sim, net, grid, rng, arrivals=(10.0, 100.0),
                             resilience=policy)
        sim.run(until=600.0)
        assert client.n_handled == 0
        assert client.n_fallback_timeout == 2
        # Job 1 opens the breaker after 2 failures; its remaining 2
        # attempts and all 4 of job 2's fast-fail.
        assert client.n_breaker_fastfail == 6
        assert sim.metrics.counter_value("breaker.opened") == 1
        assert sim.metrics.counter_value(
            "client.breaker_fastfail") == client.n_breaker_fastfail
        assert all(j.site is not None for j in client.jobs)

    def test_failover_to_healthy_secondary(self, env):
        """Probe-driven failover rebinds to the live DP and brokering
        resumes — strictly better than the timeout-only baseline."""
        sim, rng, net, grid = env
        policy = ResilienceConfig(max_attempts=3, attempt_timeout_s=5.0,
                                  backoff_base_s=1.0, backoff_factor=1.0,
                                  backoff_max_s=1.0, backoff_jitter=0.0,
                                  breaker_threshold=2, breaker_open_s=120.0,
                                  probe_interval_s=10.0, probe_timeout_s=3.0,
                                  probe_unhealthy_after=2)
        dep = DIGruberDeployment(sim, net, grid, FAST_PROFILE, rng,
                                 n_decision_points=2)
        fm = FailoverManager(sim, net, dep, policy)
        dep.start()
        fm.start()
        dep.dp("dp0").crash()
        # By t=40 the prober has marked dp0 unhealthy; the first failed
        # attempt then triggers failover to dp1.
        client = make_client(sim, net, grid, rng, arrivals=(40.0, 60.0),
                             resilience=policy, failover=fm)
        sim.run(until=300.0)
        assert client.n_failovers == 1
        assert client.rebinds == 1
        assert client.decision_point == "dp1"
        assert client.n_handled == 2
        assert client.n_fallback_timeout == 0
        assert sim.metrics.counter_value("client.failovers") == 1


class TestLoadShedding:
    def test_bounded_queue_sheds_and_answers_fast(self, env):
        sim, rng, net, grid = env
        dp = DecisionPoint(sim, net, "dp0", grid, FAST_PROFILE,
                           rng.stream("dp"), monitor_interval_s=600.0,
                           max_queue=2)
        dp.start(neighbors=[])
        evs = [net.rpc(f"h{i}", "dp0", "get_state", {}) for i in range(10)]
        sim.run(until=60.0)
        shed = [ev for ev in evs if ev.triggered and not ev.ok]
        served = [ev for ev in evs if ev.triggered and ev.ok]
        assert dp.container.shed_ops == len(shed) > 0
        assert len(served) + len(shed) == 10
        assert sim.metrics.counter_value("container.shed") == len(shed)

    def test_unbounded_by_default(self, env):
        sim, rng, net, grid = env
        dp = DecisionPoint(sim, net, "dp0", grid, FAST_PROFILE,
                           rng.stream("dp"), monitor_interval_s=600.0)
        dp.start(neighbors=[])
        evs = [net.rpc(f"h{i}", "dp0", "get_state", {}) for i in range(10)]
        sim.run(until=60.0)
        assert all(ev.ok for ev in evs)
        assert dp.container.shed_ops == 0

    def test_degradation_scales_service_time(self, env):
        sim, rng, net, grid = env
        dp = DecisionPoint(sim, net, "dp0", grid, FAST_PROFILE,
                           rng.stream("dp"), monitor_interval_s=600.0)
        dp.start(neighbors=[])
        done = []
        ev1 = net.rpc("h0", "dp0", "get_state", {})
        ev1.add_callback(lambda e: done.append(sim.now))
        sim.run(until=5.0)
        dp.container.set_degradation(4.0)
        ev2 = net.rpc("h0", "dp0", "get_state", {})
        ev2.add_callback(lambda e: done.append(sim.now))
        sim.run(until=10.0)
        # sigma=0 profile: 0.05 latency + 0.1 (or 0.4 degraded) + 0.05.
        assert done[0] == pytest.approx(0.2, abs=0.01)
        assert done[1] == pytest.approx(5.5, abs=0.01)
        dp.container.set_degradation(1.0)
        with pytest.raises(ValueError):
            dp.container.set_degradation(0.0)
