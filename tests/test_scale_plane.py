"""Scale-plane regression tests.

Covers the 10x-OSG survival work: cancellation-aware heap compaction,
condition detach, pooled RPC timeouts, the indexed state view, delta
sync, and the metrics fixes that only bite at scale — plus the
determinism proof that the fast paths are result-preserving.
"""

import numpy as np
import pytest

from repro.core.state import DispatchRecord, GridStateView
from repro.net import ConstantLatency, Endpoint, Network
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# Kernel: condition detach + heap boundedness
# ---------------------------------------------------------------------------

class TestConditionDetach:
    def test_anyof_detaches_losing_timeout(self):
        """The losing timer of a race must not keep the heap entry live."""
        sim = Simulator()
        fast_ev = sim.timeout(1.0)
        slow_ev = sim.timeout(1000.0)
        race = sim.any_of([fast_ev, slow_ev])
        sim.run(until=2.0)
        assert race.triggered
        # The loser's scheduled call was cancelled on detach.
        assert slow_ev.call.cancelled
        assert slow_ev.callbacks == []

    def test_anyof_detach_without_fast_keeps_timer(self):
        sim = Simulator(fast=False)
        fast_ev = sim.timeout(1.0)
        slow_ev = sim.timeout(1000.0)
        race = sim.any_of([fast_ev, slow_ev])
        sim.run(until=2.0)
        assert race.triggered
        # Callback detach still happens (no leaked condition refs) but
        # the timer itself stays armed (pre-change cost model).
        assert slow_ev.callbacks == []
        assert not slow_ev.call.cancelled

    def test_allof_detaches_on_failure(self):
        sim = Simulator()
        ev = sim.event()
        pending = sim.timeout(1000.0)
        combo = sim.all_of([ev, pending])
        combo.add_callback(lambda e: None)
        ev.fail(RuntimeError("boom"))
        sim.run(until=1.0)
        assert combo.triggered and not combo.ok
        assert pending.callbacks == []
        assert pending.call.cancelled

    def test_heap_stays_bounded_under_races(self):
        """10k won races must not leave 10k dead timers in the heap."""
        sim = Simulator()

        def one_race():
            fast_ev = sim.timeout(0.001)
            slow_ev = sim.timeout(10_000.0)
            yield sim.any_of([fast_ev, slow_ev])

        def driver():
            for _ in range(10_000):
                yield sim.process(one_race())

        sim.process(driver())
        sim.run(until=100.0)
        # Live work at any instant is a handful of timers; the heap must
        # not scale with the 10k completed races.
        assert len(sim._heap) < 100
        assert sim.compactions > 0


class TestRpcHeapBoundedness:
    def test_completed_rpcs_do_not_bloat_heap(self):
        """10k completed RPCs with armed timeouts: O(live) heap."""
        sim = Simulator()
        net = Network(sim, ConstantLatency(0.01))
        Endpoint(net, "client")
        server = Endpoint(net, "server")
        server.register_handler("echo", lambda payload, src: payload)

        def driver():
            for i in range(10_000):
                ev = net.rpc("client", "server", "echo", {"i": i},
                             timeout=300.0)
                yield ev
                assert ev.value == {"i": i}

        sim.process(driver())
        sim.run()
        assert len(sim._heap) < 100
        assert sim.heap_peak < 1000  # not O(completed RPCs)

    def test_legacy_mode_exhibits_the_bloat(self):
        """Sanity: fast=False reproduces the pre-change heap growth."""
        sim = Simulator(fast=False)
        net = Network(sim, ConstantLatency(0.01))
        Endpoint(net, "client")
        server = Endpoint(net, "server")
        server.register_handler("echo", lambda payload, src: payload)

        def driver():
            for i in range(2_000):
                yield net.rpc("client", "server", "echo", {}, timeout=300.0)

        sim.process(driver())
        sim.run(until=41.0)  # 2000 RPCs x 0.02 s, timeouts still armed
        assert sim.heap_peak > 1000  # dead timeouts accumulate


# ---------------------------------------------------------------------------
# State view: churn, expiry index, learn ring
# ---------------------------------------------------------------------------

def _rec(seq, site="s0", vo="cms", cpus=4, time=0.0, group=""):
    return DispatchRecord(origin="dp0", seq=seq, site=site, vo=vo,
                          cpus=cpus, time=time, group=group)


class TestStateChurn:
    @pytest.mark.parametrize("indexed", [True, False])
    def test_vo_busy_keys_do_not_accumulate(self, indexed):
        """Long sweeps: dead (site, consumer) keys must be deleted."""
        view = GridStateView({"s0": 100}, assumed_job_lifetime_s=10.0,
                             indexed=indexed)
        for i in range(500):
            t = float(i)
            view.apply_record(_rec(i, vo=f"vo{i % 50}",
                                   group=f"g{i % 7}", time=t))
            view.expire(t)
        # ~10 live records -> at most ~20 consumer keys (vo + vo.group),
        # not 100 (50 VOs x 2) dead zeros.
        assert len(view._vo_busy) <= 2 * view.n_records
        view.expire(1000.0)
        assert view.n_records == 0
        assert view._vo_busy == {}

    @pytest.mark.parametrize("indexed", [True, False])
    def test_learn_log_pruned(self, indexed):
        view = GridStateView({"s0": 100}, assumed_job_lifetime_s=10.0,
                             indexed=indexed)
        for i in range(2_000):
            t = float(i)
            view.apply_record(_rec(i, time=t))
            view.expire(t)
        assert len(view._learn_log) < 200  # not O(records ever learned)


class TestIndexedEquivalence:
    """The indexed view must answer exactly like the legacy scan."""

    def _drive(self, view, rng):
        t = 0.0
        for i in range(400):
            t += float(rng.uniform(0.0, 2.0))
            action = rng.uniform()
            if action < 0.6:
                view.apply_record(
                    _rec(i, site=f"s{int(rng.integers(0, 5))}",
                         vo=f"vo{int(rng.integers(0, 3))}",
                         cpus=int(rng.integers(1, 8)), time=t),
                    now=t + float(rng.uniform(0.0, 1.0)))
            elif action < 0.8:
                view.refresh_site(f"s{int(rng.integers(0, 5))}",
                                  busy_cpus=float(rng.integers(0, 50)),
                                  now=t)
            else:
                view.expire(t)
        return t

    def test_free_map_and_pending_match_legacy(self):
        caps = {f"s{i}": 100 for i in range(5)}
        fast = GridStateView(caps, assumed_job_lifetime_s=30.0, indexed=True)
        slow = GridStateView(caps, assumed_job_lifetime_s=30.0, indexed=False)
        t1 = self._drive(fast, np.random.default_rng(42))
        t2 = self._drive(slow, np.random.default_rng(42))
        assert t1 == t2
        assert fast.free_map(now=t1) == slow.free_map(now=t2)
        assert fast.n_records == slow.n_records
        for cutoff in (t1 - 20.0, t1 - 5.0, t1 - 0.5, t1):
            assert (sorted(r.key for r in fast.pending_records(cutoff))
                    == sorted(r.key for r in slow.pending_records(cutoff)))

    def test_records_since_watermark(self):
        view = GridStateView({"s0": 100}, assumed_job_lifetime_s=100.0)
        for i in range(10):
            view.apply_record(_rec(i, time=float(i)))
        mark, records = view.records_since(0)
        assert [r.seq for r in records] == list(range(10))
        mark2, records = view.records_since(mark)
        assert records == [] and mark2 == mark
        view.apply_record(_rec(10, time=10.0))
        mark3, records = view.records_since(mark)
        assert [r.seq for r in records] == [10]
        assert mark3 == mark + 1

    def test_key_reuse_after_absorb_keeps_index_consistent(self):
        """Adversarial redelivery: a dropped record's key comes back on
        a *different* record.  Stale expiry-heap/learn-ring entries must
        not be treated as live just because the key is."""
        view = GridStateView({"s0": 100, "s2": 10},
                             assumed_job_lifetime_s=100.0)
        old = _rec(1, site="s2", cpus=2, time=0.5)
        view.apply_record(old, now=40.0)
        view.refresh_site("s2", busy_cpus=0.0, now=40.0)  # absorbs `old`
        # Same key, different record (flooding dedup normally rejects
        # this; after the drop the key is free again).
        new = _rec(1, site="s0", cpus=3, time=41.0)
        assert view.apply_record(new, now=41.0)
        # The stale s2 entry's time passes the cutoff: must be skipped,
        # not matched by key against the live s0 record.
        view.expire(101.0)
        assert view.estimated_busy("s0") == 3.0
        assert view.estimated_busy("s2") == 0.0
        assert view.pending_records(-1.0) == [new]
        _, records = view.records_since(0)
        assert records == [new]

    def test_records_since_skips_dead(self):
        view = GridStateView({"s0": 100}, assumed_job_lifetime_s=5.0)
        for i in range(10):
            view.apply_record(_rec(i, time=float(i)))
        view.expire(10.0)  # records with time < 5 are gone
        _, records = view.records_since(0)
        assert [r.seq for r in records] == [5, 6, 7, 8, 9]


# ---------------------------------------------------------------------------
# Metrics: bin-edge clamp + concurrency rewrite
# ---------------------------------------------------------------------------

class TestEdgesClamp:
    def test_final_sliver_events_are_counted(self):
        """Seed failure: float accumulation left the last edge below
        t_end, silently dropping completions at the very end of a run."""
        from repro.metrics.timeseries import windowed_rate
        window_s = 1.1
        t_start = 120.09448068756856
        t_end = t_start
        for _ in range(155):  # a sim clock accumulates, so t_end drifts
            t_end += window_s
        n = int(np.ceil((t_end - t_start) / window_s))
        raw_last = t_start + n * window_s
        assert raw_last < t_end  # the seed bug precondition
        centers, rates = windowed_rate(np.array([t_end]),
                                       t_start, t_end, window_s)
        assert rates.sum() * window_s == pytest.approx(1.0)

    def test_edges_still_exact_when_no_drift(self):
        from repro.metrics.timeseries import _edges
        edges = _edges(0.0, 600.0, 60.0)
        assert len(edges) == 11
        assert edges[0] == 0.0 and edges[-1] == 600.0


def _concurrency_matrix(start_times, end_times, t_start, t_end, window_s):
    """The old O(windows x clients) implementation, kept as the oracle."""
    from repro.metrics.timeseries import _edges
    edges = _edges(t_start, t_end, window_s)
    s = np.asarray(start_times, dtype=np.float64)
    e = np.asarray(end_times, dtype=np.float64)
    e = np.where(np.isnan(e), t_end, e)
    lo = edges[:-1][:, None]
    hi = edges[1:][:, None]
    active = (s[None, :] < hi) & (e[None, :] > lo)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, active.sum(axis=1)


class TestConcurrencyRewrite:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_matrix_oracle_on_random_inputs(self, seed):
        from repro.metrics.timeseries import concurrency_series
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 200))
        starts = rng.uniform(0.0, 900.0, size=n)
        ends = starts + rng.uniform(0.0, 600.0, size=n)
        ends[rng.uniform(size=n) < 0.2] = np.nan  # active through t_end
        centers, counts = concurrency_series(starts, ends, 0.0, 1000.0, 37.0)
        oc, on = _concurrency_matrix(starts, ends, 0.0, 1000.0, 37.0)
        np.testing.assert_array_equal(centers, oc)
        np.testing.assert_array_equal(counts, on)

    def test_window_boundary_semantics(self):
        """start < hi (exclusive), end > lo (exclusive) — exactly as the
        matrix version counted them."""
        from repro.metrics.timeseries import concurrency_series
        starts = np.array([10.0])
        ends = np.array([20.0])
        _, counts = concurrency_series(starts, ends, 0.0, 40.0, 10.0)
        # Active in [10,20) only: not [0,10) (end>lo fails at lo=10?
        # no: lo=0,hi=10 -> start<10 is False), not [20,30).
        np.testing.assert_array_equal(counts, [0, 1, 0, 0])


# ---------------------------------------------------------------------------
# Determinism: fast paths are result-preserving
# ---------------------------------------------------------------------------

class TestDeterminism:
    def _summary(self, fast):
        from repro.experiments import run_experiment
        from repro.experiments.configs import canonical_gt3
        config = canonical_gt3(3, duration_s=240.0, n_clients=24,
                               n_sites=30, total_cpus=4000,
                               fast_paths=fast)
        result = run_experiment(config)
        return (result.summary(), result.n_jobs,
                result.dp_ops(), result.client_fallbacks())

    def test_fast_paths_byte_identical(self):
        assert self._summary(True) == self._summary(False)

    def test_fast_on_is_self_deterministic(self):
        assert self._summary(True) == self._summary(True)
