"""Tests for the space-parallel sharded simulation (repro.sim.sharded).

The load-bearing claim is *partition independence*: hoods only couple
at epoch barriers, so grouping them onto 1, 2, or 4 shards — or onto
worker processes — must produce bit-identical per-hood summaries and
identical canonically merged event journals.  The property tests sweep
seeds and shard counts; the chaos test repeats the claim with a DP
crash/restart striking hood 0 while the strict invariant checker runs
inside every neighborhood.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.experiments.configs import smoke_config
from repro.sim.sharded import (ShardedRunResult, hood_config, plan_shards,
                               run_sharded)


def _config(seed=20050101, **overrides):
    base = dict(decision_points=4, n_clients=16, n_sites=16,
                total_cpus=800, duration_s=300.0, sync_interval_s=60.0,
                seed=seed, name="shard-test")
    base.update(overrides)
    return smoke_config(**base)


class TestPlanShards:
    @given(n_hoods=st.integers(1, 12), n_shards=st.integers(1, 12))
    def test_balanced_contiguous_cover(self, n_hoods, n_shards):
        assume(n_shards <= n_hoods)
        plan = plan_shards(n_hoods, n_shards)
        assert len(plan) == n_shards
        flat = [h for block in plan for h in block]
        assert flat == list(range(n_hoods))  # contiguous, disjoint, total
        sizes = [len(block) for block in plan]
        assert max(sizes) - min(sizes) <= 1  # balanced

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            plan_shards(4, 0)
        with pytest.raises(ValueError):
            plan_shards(4, 5)


class TestHoodConfig:
    def test_shares_partition_the_grid(self):
        config = _config(n_clients=18, n_sites=17, total_cpus=801)
        hoods = [hood_config(config, h)
                 for h in range(config.decision_points)]
        assert sum(h.n_clients for h in hoods) == config.n_clients
        assert sum(h.n_sites for h in hoods) == config.n_sites
        assert sum(h.total_cpus for h in hoods) == config.total_cpus
        assert all(h.decision_points == 1 for h in hoods)
        # Disjoint identity spaces: seeds, names, and job-id blocks.
        assert len({h.seed for h in hoods}) == len(hoods)
        assert len({h.name for h in hoods}) == len(hoods)
        assert len({h.jid_offset for h in hoods}) == len(hoods)

    def test_chaos_strikes_hood_zero_only(self):
        config = _config(chaos_scenario="dp_crash_restart")
        assert hood_config(config, 0).chaos_scenario == "dp_crash_restart"
        for h in range(1, config.decision_points):
            assert hood_config(config, h).chaos_scenario == ""

    def test_per_sim_observability_forced_off(self):
        config = _config(trace_enabled=True, spans_enabled=True)
        hood = hood_config(config, 1)
        assert not hood.trace_enabled and not hood.spans_enabled

    def test_rejects_unshardable(self):
        with pytest.raises(ValueError):
            hood_config(_config(n_clients=2), 0)
        with pytest.raises(ValueError):
            hood_config(_config(), 7)


class TestPartitionIndependence:
    def test_journals_identical_across_groupings(self):
        """The fixed reference case, compared entry-for-entry."""
        config = _config()
        ref = run_sharded(config, n_shards=1, journal=True)
        assert isinstance(ref, ShardedRunResult)
        assert ref.n_hoods == 4 and ref.n_jobs > 0
        for n_shards in (2, 4):
            other = run_sharded(config, n_shards=n_shards, journal=True)
            assert other.summary_digests == ref.summary_digests
            assert other.total_events == ref.total_events
            assert [(e.time, e.kind, e.detail)
                    for e in other.journal.entries] == \
                   [(e.time, e.kind, e.detail)
                    for e in ref.journal.entries]
            assert other.journal.digest == ref.journal.digest

    def test_batched_dispatch_digest_equal_across_shards(self):
        """Batch windows respect epoch barriers: with event-batch
        dispatch explicitly on, 1-shard and 4-shard runs still merge to
        the same journal digest, and a batched run replays a scalar
        (batch-off) run bit for bit."""
        config = _config(batch_dispatch=True, vectorized_sites=True)
        one = run_sharded(config, n_shards=1, journal=True)
        four = run_sharded(config, n_shards=4, journal=True)
        assert four.summary_digests == one.summary_digests
        assert four.journal.digest == one.journal.digest
        scalar = run_sharded(config.with_(batch_dispatch=False),
                             n_shards=4, journal=True)
        assert scalar.journal.digest == one.journal.digest

    def test_worker_mode_matches_lockstep(self):
        config = _config()
        lockstep = run_sharded(config, n_shards=2, mode="lockstep",
                               journal=True)
        workers = run_sharded(config, n_shards=2, mode="workers",
                              journal=True)
        assert workers.summary_digests == lockstep.summary_digests
        assert workers.journal.digest == lockstep.journal.digest

    _reference = {}  # seed -> (digests, journal digest), shared by examples

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2), n_shards=st.integers(1, 4))
    def test_any_partition_matches_reference(self, seed, n_shards):
        config = _config(seed=11_000 + seed)
        if seed not in self._reference:
            ref = run_sharded(config, n_shards=1, journal=True)
            self._reference[seed] = (ref.summary_digests,
                                     ref.journal.digest)
        result = run_sharded(config, n_shards=n_shards, journal=True)
        digests, journal_digest = self._reference[seed]
        assert result.summary_digests == digests
        assert result.journal.digest == journal_digest

    _chaos_reference = {}

    @settings(max_examples=6, deadline=None)
    @given(n_shards=st.integers(1, 4))
    def test_chaos_partition_independent_under_checker(self, n_shards):
        """DP crash/restart inside hood 0 plus the strict invariant
        checker in every neighborhood: still grouping-independent."""
        config = _config(duration_s=600.0,
                         chaos_scenario="dp_crash_restart",
                         check_enabled=True, check_strict=True)
        if not self._chaos_reference:
            ref = run_sharded(config, n_shards=1, journal=True)
            self._chaos_reference["ref"] = (ref.summary_digests,
                                            ref.journal.digest)
        result = run_sharded(config, n_shards=n_shards, journal=True)
        digests, journal_digest = self._chaos_reference["ref"]
        assert result.summary_digests == digests
        assert result.journal.digest == journal_digest

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            run_sharded(_config(), n_shards=2, mode="threads")


class TestResultSurface:
    def test_describe_and_derived_fields(self):
        result = run_sharded(_config(), n_shards=2)
        text = result.describe()
        assert "4 neighborhood(s) on 2 shard(s)" in text
        assert f"digest={result.digest}" in text
        assert result.events_per_s > 0
        assert result.n_jobs == sum(s.n_jobs for s in result.summaries)
        assert result.journal is None and result.journal_digest is None
        fb = result.fallbacks()
        # Aggregated across hoods: tallies match the per-hood sums.
        assert fb["handled"] == sum(s.fallbacks["handled"]
                                    for s in result.summaries)
        assert all(v >= 0 for v in fb.values())
