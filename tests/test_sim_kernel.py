"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Event, Interrupt, ProcessKilled, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_runs_at_time(self, sim):
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_schedule_order_by_time(self, sim):
        seen = []
        sim.schedule(3.0, lambda: seen.append("c"))
        sim.schedule(1.0, lambda: seen.append("a"))
        sim.schedule(2.0, lambda: seen.append("b"))
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self, sim):
        seen = []
        for tag in range(10):
            sim.schedule(1.0, lambda t=tag: seen.append(t))
        sim.run()
        assert seen == list(range(10))

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(5.0, lambda: sim.schedule_at(1.0, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_cancel_prevents_execution(self, sim):
        seen = []
        call = sim.schedule(1.0, lambda: seen.append(1))
        call.cancel()
        sim.run()
        assert seen == []

    def test_run_until_stops_clock_exactly(self, sim):
        sim.schedule(10.0, lambda: None)
        sim.run(until=4.5)
        assert sim.now == 4.5
        assert sim.pending == 1

    def test_run_until_executes_boundary_events(self, sim):
        seen = []
        sim.schedule(4.5, lambda: seen.append(1))
        sim.run(until=4.5)
        assert seen == [1]

    def test_run_until_past_raises(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run(until=5.0)
        with pytest.raises(ValueError):
            sim.run(until=1.0)

    def test_nested_scheduling(self, sim):
        seen = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [2.0]

    def test_events_executed_counter(self, sim):
        for _ in range(7):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 7


class TestEvents:
    def test_succeed_carries_value(self, sim):
        ev = sim.event()
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        ev.succeed(42)
        sim.run()
        assert got == [42]

    def test_fail_carries_exception(self, sim):
        ev = sim.event()
        got = []
        ev.add_callback(lambda e: got.append((e.ok, type(e.value))))
        ev.fail(RuntimeError("boom"))
        sim.run()
        assert got == [(False, RuntimeError)]

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(RuntimeError):
            ev.succeed(2)
        with pytest.raises(RuntimeError):
            ev.fail(ValueError())

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(RuntimeError):
            _ = ev.value

    def test_callback_after_dispatch_still_runs(self, sim):
        ev = sim.event()
        ev.succeed("x")
        sim.run()
        late = []
        ev.add_callback(lambda e: late.append(e.value))
        sim.run()
        assert late == ["x"]

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")  # type: ignore[arg-type]

    def test_timeout_fires_at_delay(self, sim):
        ev = sim.timeout(3.0, value="done")
        got = []
        ev.add_callback(lambda e: got.append((sim.now, e.value)))
        sim.run()
        assert got == [(3.0, "done")]

    def test_timeout_negative_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-0.1)


class TestConditions:
    def test_any_of_first_wins(self, sim):
        a, b = sim.timeout(1.0, "a"), sim.timeout(2.0, "b")
        cond = sim.any_of([a, b])
        sim.run()
        assert cond.ok and a in cond.value and b not in cond.value

    def test_any_of_empty_succeeds_immediately(self, sim):
        cond = sim.any_of([])
        assert cond.triggered and cond.value == {}

    def test_any_of_failure_propagates(self, sim):
        a = sim.event()
        cond = sim.any_of([a, sim.timeout(10.0)])
        a.fail(ValueError("x"))
        sim.run()
        assert cond.ok is False and isinstance(cond.value, ValueError)

    def test_all_of_waits_for_all(self, sim):
        evs = [sim.timeout(t) for t in (1.0, 2.0, 3.0)]
        cond = sim.all_of(evs)
        done_at = []
        cond.add_callback(lambda e: done_at.append(sim.now))
        sim.run()
        assert done_at == [3.0]

    def test_all_of_failure_short_circuits(self, sim):
        a = sim.event()
        cond = sim.all_of([a, sim.timeout(10.0)])
        a.fail(KeyError("k"))
        sim.run()
        assert cond.ok is False


class TestProcesses:
    def test_process_sleeps(self, sim):
        trace = []

        def proc():
            trace.append(sim.now)
            yield 5.0
            trace.append(sim.now)

        sim.process(proc())
        sim.run()
        assert trace == [0.0, 5.0]

    def test_process_return_value(self, sim):
        def proc():
            yield 1.0
            return "result"

        p = sim.process(proc())
        sim.run()
        assert p.ok and p.value == "result"

    def test_process_waits_on_event(self, sim):
        ev = sim.event()
        got = []

        def proc():
            val = yield ev
            got.append((sim.now, val))

        sim.process(proc())
        sim.schedule(7.0, lambda: ev.succeed("payload"))
        sim.run()
        assert got == [(7.0, "payload")]

    def test_failed_event_raises_in_process(self, sim):
        ev = sim.event()
        got = []

        def proc():
            try:
                yield ev
            except ValueError as e:
                got.append(str(e))

        sim.process(proc())
        sim.schedule(1.0, lambda: ev.fail(ValueError("rpc failed")))
        sim.run()
        assert got == ["rpc failed"]

    def test_process_exception_fails_termination_event(self, sim):
        def proc():
            yield 1.0
            raise RuntimeError("inner")

        p = sim.process(proc())
        sim.run()
        assert p.ok is False and isinstance(p.value, RuntimeError)

    def test_process_waits_on_subprocess(self, sim):
        def child():
            yield 3.0
            return 99

        def parent():
            val = yield sim.process(child())
            return val + 1

        p = sim.process(parent())
        sim.run()
        assert p.value == 100 and sim.now == 3.0

    def test_interrupt_raises_inside(self, sim):
        got = []

        def proc():
            try:
                yield 100.0
            except Interrupt as i:
                got.append((sim.now, i.cause))

        p = sim.process(proc())
        sim.schedule(2.0, lambda: p.interrupt("deadline"))
        sim.run()
        assert got == [(2.0, "deadline")]

    def test_unhandled_interrupt_fails_process(self, sim):
        def proc():
            yield 100.0

        p = sim.process(proc())
        sim.schedule(1.0, lambda: p.interrupt())
        sim.run()
        assert p.ok is False and isinstance(p.value, Interrupt)

    def test_interrupt_after_completion_is_noop(self, sim):
        def proc():
            yield 1.0

        p = sim.process(proc())
        sim.run()
        p.interrupt()
        sim.run()
        assert p.ok is True

    def test_kill(self, sim):
        def proc():
            yield 100.0

        p = sim.process(proc())
        sim.schedule(1.0, p.kill)
        sim.run()
        assert p.ok is False and isinstance(p.value, ProcessKilled)

    def test_bad_yield_type_fails_process(self, sim):
        def proc():
            yield "not an event"

        p = sim.process(proc())
        sim.run()
        assert p.ok is False and isinstance(p.value, TypeError)

    def test_stale_event_ignored_after_interrupt(self, sim):
        """An event the process was waiting on must not resume it after
        an interrupt redirected control flow."""
        ev = sim.event()
        trace = []

        def proc():
            try:
                yield ev
            except Interrupt:
                trace.append("interrupted")
                yield 5.0
                trace.append("slept")

        p = sim.process(proc())
        sim.schedule(1.0, lambda: p.interrupt())
        sim.schedule(2.0, lambda: ev.succeed("late"))
        sim.run()
        assert trace == ["interrupted", "slept"]

    def test_abandoned_process_survives_gc(self, sim):
        """A process stuck on an event that can never fire must stay
        suspended — not be closed by the cyclic garbage collector.

        Holding no external reference to the process or its wake-up
        event makes the whole cluster cyclic garbage; if the kernel did
        not pin live processes, ``gc.collect()`` would ``close()`` the
        generator and run its ``finally`` at an arbitrary instant
        (observed as run-to-run nondeterminism under fault injection).
        """
        import gc

        closed = []

        def wedged():
            try:
                yield sim.event()  # nobody will ever succeed this
            finally:
                closed.append(sim.now)

        sim.process(wedged())
        sim.schedule(5.0, lambda: None)
        sim.run()
        gc.collect()
        assert closed == []

    def test_terminated_processes_are_unpinned(self, sim):
        """The live-process registry must not accumulate finished ones."""
        def proc():
            yield 1.0

        def failing():
            yield 1.0
            raise RuntimeError("boom")

        p = sim.process(proc())
        q = sim.process(failing())
        q.add_callback(lambda ev: None)  # watched: not an unhandled failure
        sim.run()
        assert p not in sim._processes
        assert q not in sim._processes


class TestPeriodic:
    def test_every_fires_on_interval(self, sim):
        ticks = []
        sim.every(10.0, lambda: ticks.append(sim.now))
        sim.run(until=35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_every_start_offset(self, sim):
        ticks = []
        sim.every(10.0, lambda: ticks.append(sim.now), start=1.0)
        sim.run(until=25.0)
        assert ticks == [1.0, 11.0, 21.0]

    def test_every_cancel_stops_chain(self, sim):
        ticks = []
        handle = sim.every(1.0, lambda: ticks.append(sim.now))
        sim.schedule(3.5, handle.cancel)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]

    def test_every_rejects_nonpositive_interval(self, sim):
        with pytest.raises(ValueError):
            sim.every(0.0, lambda: None)


class TestCancelAccounting:
    """The ``_dead`` counter is a subset-of-heap invariant: a cancel is
    noted iff its entry is still in the heap (``_sim`` cleared on every
    exit path — pop or compaction), so late cancels can never skew the
    compaction trigger."""

    def test_cancel_from_inside_own_callback(self, sim):
        """A callback cancelling its own (already-popped) handle must
        not count as a dead heap entry."""
        fired = []
        holder = {}

        def fn():
            fired.append(sim.now)
            holder["call"].cancel()

        holder["call"] = sim.schedule(5.0, fn)
        sim.run()
        assert fired == [5.0]
        assert sim._dead == 0

    def test_late_cancel_after_run_not_counted(self, sim):
        call = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)  # keep the heap non-trivial
        sim.run(until=1.5)
        call.cancel()  # entry already left the heap
        assert sim._dead == 0
        sim.run()

    def test_periodic_self_cancel_from_tick(self, sim):
        """A periodic timer cancelling itself from inside its own tick:
        the chain stops, and the cancel of the just-popped entry leaves
        the accounting untouched."""
        ticks = []
        handles = {}

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 3:
                handles["h"].cancel()

        handles["h"] = sim.every(1.0, tick)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]
        assert sim._dead == 0

    def test_compact_clears_backrefs_on_dropped_entries(self):
        """Entries removed by compaction uphold the popped-entry
        contract (``_sim`` cleared), so a double ``cancel()`` on a
        handle the compactor already dropped cannot re-note."""
        sim = Simulator(fast=True, compact_min=4)
        calls = [sim.schedule(100.0 + i, lambda: None) for i in range(8)]
        for call in calls:
            call.cancel()
        assert sim.compactions >= 1
        assert sim._dead == 0
        assert all(call._sim is None for call in calls)
        # Forcing a second cancel must be a no-op (idempotent flag),
        # and even a fresh cancel-note on an out-of-heap entry is
        # unreachable because the back-reference is gone.
        for call in calls:
            call.cancel()
        assert sim._dead == 0

    def test_double_note_trips_the_guard(self, sim):
        """Any future path that notes a cancel for an entry outside the
        heap must fail loudly, not silently skew compaction."""
        from repro.sim.kernel import ScheduledCall

        stray = ScheduledCall(0.0, lambda: None, sim)  # never heap-pushed
        with pytest.raises(AssertionError, match="cancel accounting"):
            stray.cancel()

    def test_cancelled_pops_drain_the_counter(self, sim):
        """Both pop paths (step and bounded run) decrement ``_dead``
        for each cancelled entry they skip."""
        calls = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
        calls[0].cancel()
        calls[2].cancel()
        assert sim._dead == 2
        sim.run(until=2.5)   # pops entries at t=1 (dead) and t=2 (live)
        assert sim._dead == 1
        sim.run()            # drains t=3 (dead) and t=4 (live)
        assert sim._dead == 0


class TestDispatchRemoval:
    def test_sibling_removed_during_dispatch_does_not_fire(self, sim):
        # Regression: remove_callback was a no-op once dispatch began
        # (the list was detached), so a callback removing a later
        # sibling silently let that sibling fire anyway.
        ev = sim.event()
        fired = []
        third = lambda e: fired.append("third")
        def first(e):
            fired.append("first")
            e.remove_callback(third)
        second = lambda e: fired.append("second")
        for cb in (first, second, third):
            ev.add_callback(cb)
        ev.succeed()
        sim.run()
        assert fired == ["first", "second"]

    def test_removal_never_skips_a_neighbour(self, sim):
        # Sentinel replacement (not list.remove) keeps dispatch indices
        # stable: removing an adjacent sibling must not skip the one
        # after it.
        ev = sim.event()
        fired = []
        second = lambda e: fired.append("second")
        def first(e):
            fired.append("first")
            e.remove_callback(second)
        for i, cb in enumerate([first, second]):
            ev.add_callback(cb)
        ev.add_callback(lambda e: fired.append("third"))
        ev.add_callback(lambda e: fired.append("fourth"))
        ev.succeed()
        sim.run()
        assert fired == ["first", "third", "fourth"]

    def test_removing_self_or_done_callback_is_noop(self, sim):
        ev = sim.event()
        fired = []
        def first(e):
            fired.append("first")
        def second(e):
            fired.append("second")
            e.remove_callback(first)   # already ran: no-op
            e.remove_callback(second)  # currently running: no-op
        ev.add_callback(first)
        ev.add_callback(second)
        ev.succeed()
        sim.run()
        assert fired == ["first", "second"]
        ev.remove_callback(first)  # after dispatch: still a no-op


class TestBatchDispatch:
    def test_flag_selects_the_loop(self):
        assert Simulator().batch_dispatch
        assert not Simulator(batch_dispatch=False).batch_dispatch

    def test_batched_and_scalar_runs_agree(self):
        def run(batch):
            sim = Simulator(batch_dispatch=batch)
            fired = []
            for i in range(50):
                t = float(i % 7)  # dense timestamp collisions
                sim.schedule(t, lambda i=i: fired.append((sim.now, i)))
            sim.run(until=5.0)
            tail_now = sim.now
            sim.run()
            return fired, tail_now, sim.now, sim.events_executed
        assert run(True) == run(False)

    def test_same_instant_reschedule_joins_the_batch(self, sim):
        fired = []
        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(0.0, lambda: chain(n + 1))
        sim.schedule(1.0, lambda: chain(0))
        sim.schedule(1.0, lambda: fired.append("peer"))
        sim.run(until=1.0)
        # The re-scheduled same-instant calls carry higher seqs, so the
        # already-queued peer fires between chain(0) and chain(1).
        assert fired == [0, "peer", 1, 2, 3]
        assert sim.now == 1.0

    def test_cancel_inside_batch_skips_the_sibling(self, sim):
        fired = []
        handles = {}
        def first():
            fired.append("first")
            handles["late"].cancel()
        handles["late"] = None
        sim.schedule(2.0, first)
        handles["late"] = sim.schedule(2.0, lambda: fired.append("late"))
        sim.run()
        assert fired == ["first"]
        assert sim.events_executed == 1

    def test_compaction_during_batch_keeps_future_events(self):
        # _compact must rebuild the heap *in place*: the batched loop
        # holds a local alias across callbacks, and a mid-batch
        # compaction that rebound the list would silently strand every
        # remaining event.
        sim = Simulator(compact_min=8)
        cancelled = [sim.schedule(5.0, lambda: None) for _ in range(64)]
        fired = []
        def cancel_storm():
            fired.append("storm")
            for h in cancelled:
                h.cancel()  # trips the compaction threshold mid-batch
        sim.schedule(1.0, cancel_storm)
        sim.schedule(1.0, lambda: fired.append("same-instant"))
        sim.schedule(3.0, lambda: fired.append("future"))
        sim.run()
        assert fired == ["storm", "same-instant", "future"]
        assert sim.compactions >= 1
