"""Property-based tests (hypothesis) for kernel invariants."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Server, Simulator


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=200))
def test_callbacks_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e3,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=100),
       cutoff=st.floats(min_value=0.0, max_value=1e3, allow_nan=False))
def test_run_until_partitions_events_exactly(delays, cutoff):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(d))
    sim.run(until=cutoff)
    assert sorted(fired) == sorted(d for d in delays if d <= cutoff)
    assert sim.now == cutoff


@given(service_times=st.lists(st.floats(min_value=0.001, max_value=100.0,
                                        allow_nan=False, allow_infinity=False),
                              min_size=1, max_size=50),
       capacity=st.integers(min_value=1, max_value=8))
@settings(max_examples=50)
def test_server_never_exceeds_capacity_and_serves_everyone(service_times, capacity):
    sim = Simulator()
    srv = Server(sim, capacity=capacity)
    max_seen = 0
    completed = []

    def job(tag, svc):
        nonlocal max_seen
        yield srv.acquire()
        max_seen = max(max_seen, srv.in_service)
        try:
            yield svc
        finally:
            srv.release()
        completed.append(tag)

    for i, svc in enumerate(service_times):
        sim.process(job(i, svc))
    sim.run()
    assert max_seen <= capacity
    assert sorted(completed) == list(range(len(service_times)))
    assert srv.in_service == 0 and srv.queue_len == 0


@given(service_times=st.lists(st.floats(min_value=0.1, max_value=10.0,
                                        allow_nan=False),
                              min_size=2, max_size=30))
@settings(max_examples=50)
def test_single_server_is_work_conserving(service_times):
    """With capacity 1 and all arrivals at t=0, makespan == sum of services."""
    sim = Simulator()
    srv = Server(sim, capacity=1)

    def job(svc):
        yield srv.acquire()
        try:
            yield svc
        finally:
            srv.release()

    for svc in service_times:
        sim.process(job(svc))
    sim.run()
    assert abs(sim.now - sum(service_times)) < 1e-6 * len(service_times)


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100, allow_nan=False),
                          st.integers(min_value=0, max_value=5)),
                min_size=1, max_size=100))
def test_heap_determinism_reference_model(entries):
    """The kernel's (time, seq) ordering matches a reference stable sort."""
    sim = Simulator()
    fired = []
    for t, tag in entries:
        sim.schedule(t, lambda t=t, g=tag: fired.append((t, g)))
    sim.run()
    expected = [e for e in sorted(entries, key=lambda e: e[0])]
    assert fired == expected


@given(n=st.integers(min_value=2, max_value=10),
       removals=st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                         max_size=8))
def test_remove_callback_during_dispatch_matches_model(n, removals):
    """Arbitrary removal patterns during dispatch obey one contract:
    a callback removed before its turn never fires, everything else
    fires exactly once, in registration order."""
    removals = [(a % n, b % n) for a, b in removals]
    by_remover: dict[int, list[int]] = {}
    for a, b in removals:
        by_remover.setdefault(a, []).append(b)

    sim = Simulator()
    ev = sim.event("prop")
    fired = []
    cbs = []

    def make(i):
        def cb(e):
            fired.append(i)
            for target in by_remover.get(i, ()):
                e.remove_callback(cbs[target])
        return cb

    cbs = [make(i) for i in range(n)]
    for cb in cbs:
        ev.add_callback(cb)
    ev.succeed()
    sim.run()

    expected, removed = [], set()
    for i in range(n):
        if i in removed:
            continue
        expected.append(i)
        # Removing an already-fired (or the running) callback is a
        # no-op on the output; only not-yet-run siblings are affected.
        removed.update(by_remover.get(i, ()))
    assert fired == expected
