"""Unit tests for Server / Store / Gate queueing resources."""

import pytest

from repro.sim import Gate, Server, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


class TestServer:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Server(sim, capacity=0)

    def test_immediate_grant_under_capacity(self, sim):
        srv = Server(sim, capacity=2)
        ev = srv.acquire()
        assert ev.triggered and srv.in_service == 1

    def test_queue_past_capacity(self, sim):
        srv = Server(sim, capacity=1)
        first = srv.acquire()
        second = srv.acquire()
        assert first.triggered and not second.triggered
        assert srv.queue_len == 1

    def test_release_grants_fifo(self, sim):
        srv = Server(sim, capacity=1)
        srv.acquire()
        order = []
        for tag in ("a", "b", "c"):
            srv.acquire().add_callback(lambda e, t=tag: order.append(t))
        srv.release()
        sim.run()
        srv.release()
        sim.run()
        assert order == ["a", "b"]

    def test_release_without_acquire_raises(self, sim):
        srv = Server(sim, capacity=1)
        with pytest.raises(RuntimeError):
            srv.release()

    def test_in_service_constant_while_queue_nonempty(self, sim):
        srv = Server(sim, capacity=3)
        for _ in range(5):
            srv.acquire()
        assert srv.in_service == 3
        srv.release()
        assert srv.in_service == 3  # slot handed straight to a waiter
        assert srv.queue_len == 1

    def test_mm1_flow_through_processes(self, sim):
        """Three unit-time jobs through a single server finish at 1,2,3."""
        srv = Server(sim, capacity=1)
        done = []

        def job(tag):
            yield srv.acquire()
            try:
                yield 1.0
            finally:
                srv.release()
            done.append((tag, sim.now))

        for t in range(3):
            sim.process(job(t))
        sim.run()
        assert done == [(0, 1.0), (1, 2.0), (2, 3.0)]

    def test_multiserver_parallelism(self, sim):
        srv = Server(sim, capacity=2)
        done = []

        def job(tag):
            yield srv.acquire()
            try:
                yield 1.0
            finally:
                srv.release()
            done.append((tag, sim.now))

        for t in range(4):
            sim.process(job(t))
        sim.run()
        assert done == [(0, 1.0), (1, 1.0), (2, 2.0), (3, 2.0)]

    def test_counters(self, sim):
        srv = Server(sim, capacity=1)
        srv.acquire()
        srv.acquire()
        srv.acquire()
        assert srv.total_acquired == 1
        assert srv.peak_queue_len == 2
        srv.release()
        assert srv.total_acquired == 2

    def test_utilization_snapshot(self, sim):
        srv = Server(sim, capacity=4)
        srv.acquire()
        srv.acquire()
        assert srv.utilization_snapshot() == 0.5


class TestStore:
    def test_put_then_get(self, sim):
        st = Store(sim)
        st.put("x")
        ev = st.get()
        assert ev.triggered and ev.value == "x"

    def test_get_blocks_until_put(self, sim):
        st = Store(sim)
        got = []

        def consumer():
            item = yield st.get()
            got.append((sim.now, item))

        sim.process(consumer())
        sim.schedule(5.0, lambda: st.put("late"))
        sim.run()
        assert got == [(5.0, "late")]

    def test_fifo_ordering(self, sim):
        st = Store(sim)
        for i in range(3):
            st.put(i)
        assert [st.get().value for _ in range(3)] == [0, 1, 2]

    def test_waiting_getters_fifo(self, sim):
        st = Store(sim)
        order = []
        st.get().add_callback(lambda e: order.append(("first", e.value)))
        st.get().add_callback(lambda e: order.append(("second", e.value)))
        st.put("a")
        st.put("b")
        sim.run()
        assert order == [("first", "a"), ("second", "b")]

    def test_try_get(self, sim):
        st = Store(sim)
        assert st.try_get() is None
        st.put(1)
        assert st.try_get() == 1
        assert len(st) == 0


class TestGate:
    def test_closed_gate_blocks(self, sim):
        g = Gate(sim)
        ev = g.wait()
        assert not ev.triggered

    def test_open_gate_passes(self, sim):
        g = Gate(sim, open_=True)
        assert g.wait().triggered

    def test_open_releases_all_waiters(self, sim):
        g = Gate(sim)
        evs = [g.wait() for _ in range(3)]
        g.open()
        sim.run()
        assert all(e.triggered for e in evs)

    def test_reclose(self, sim):
        g = Gate(sim, open_=True)
        g.close()
        assert not g.wait().triggered
