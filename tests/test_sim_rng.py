"""Tests for the reproducible RNG registry."""

import numpy as np
import pytest

from repro.sim import RngRegistry


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(7).stream("latency")
        b = RngRegistry(7).stream("latency")
        assert np.array_equal(a.random(10), b.random(10))

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("latency")
        b = RngRegistry(2).stream("latency")
        assert not np.array_equal(a.random(10), b.random(10))

    def test_different_names_independent(self):
        reg = RngRegistry(0)
        a = reg.stream("alpha").random(10)
        b = reg.stream("beta").random(10)
        assert not np.array_equal(a, b)

    def test_stream_cached(self):
        reg = RngRegistry(0)
        assert reg.stream("x") is reg.stream("x")

    def test_creation_order_does_not_matter(self):
        r1 = RngRegistry(5)
        r1.stream("a")
        seq1 = r1.stream("b").random(5)
        r2 = RngRegistry(5)
        seq2 = r2.stream("b").random(5)  # "b" created first here
        assert np.array_equal(seq1, seq2)

    def test_spawn_children_independent(self):
        root = RngRegistry(3)
        c1 = root.spawn("exp1")
        c2 = root.spawn("exp2")
        assert c1.seed != c2.seed
        assert not np.array_equal(c1.stream("s").random(5), c2.stream("s").random(5))

    def test_spawn_deterministic(self):
        assert RngRegistry(3).spawn("e").seed == RngRegistry(3).spawn("e").seed

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry("seed")  # type: ignore[arg-type]
