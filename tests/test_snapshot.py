"""Snapshot format, codec, atomic writes, and round-trip properties."""

import json
import os
import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check.invariants import check_snapshot_invariants
from repro.experiments.configs import canonical_gt4, smoke_config
from repro.experiments.runner import build_experiment
from repro.sim.snapshot import (
    SnapshotError,
    checkpoint_filename,
    decode_config,
    encode_config,
    newest_checkpoint,
    read_snapshot,
    snapshot_experiment,
    state_digest,
    write_snapshot,
)


def _config(**overrides):
    return smoke_config(n_clients=4, duration_s=120.0, **overrides)


class TestConfigCodec:
    def test_round_trip_smoke(self):
        config = _config()
        assert decode_config(encode_config(config)) == config

    def test_round_trip_survives_json(self):
        config = _config()
        blob = json.dumps(encode_config(config))
        assert decode_config(json.loads(blob)) == config

    def test_round_trip_nested_dataclasses(self):
        from repro.control import AutoscaleConfig
        from repro.resilience import ResilienceConfig
        config = canonical_gt4(3, duration_s=300.0,
                               resilience=ResilienceConfig(),
                               autoscale=AutoscaleConfig())
        restored = decode_config(json.loads(json.dumps(
            encode_config(config))))
        assert restored == config
        # tuple-ness restored (JSON lists them)
        assert isinstance(restored.job_model.cpu_choices, tuple)


class TestOnDiskFormat:
    def test_write_read_round_trip(self, tmp_path):
        built = build_experiment(_config())
        built.sim.run(until=60.0)
        snap = snapshot_experiment(built)
        path = write_snapshot(snap, str(tmp_path / "s.json"))
        # JSON turns tuples into lists, so compare canonically: the
        # read-back body must digest identically, section for section.
        reread = read_snapshot(path)
        assert reread["digests"] == snap["digests"]
        for section, value in reread["state"].items():
            assert state_digest(value) == snap["digests"][section], section
        assert reread["event_count"] == snap["event_count"]
        assert reread["time"] == snap["time"]

    def test_crc_detects_corruption(self, tmp_path):
        built = build_experiment(_config())
        built.sim.run(until=30.0)
        path = write_snapshot(snapshot_experiment(built),
                              str(tmp_path / "s.json"))
        doc = json.loads(open(path).read())
        doc["snapshot"]["time"] += 1.0
        open(path, "w").write(json.dumps(doc))
        with pytest.raises(SnapshotError, match="CRC"):
            read_snapshot(path)

    def test_rejects_foreign_and_future_files(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text('{"hello": 1}')
        with pytest.raises(SnapshotError, match="not a"):
            read_snapshot(str(p))
        p.write_text(json.dumps({
            "meta": {"format": "digruber-snapshot", "version": 99,
                     "crc": "0"},
            "snapshot": {}}))
        with pytest.raises(SnapshotError, match="version"):
            read_snapshot(str(p))

    def test_truncated_file_rejected(self, tmp_path):
        built = build_experiment(_config())
        built.sim.run(until=30.0)
        path = write_snapshot(snapshot_experiment(built),
                              str(tmp_path / "s.json"))
        blob = open(path).read()
        open(path, "w").write(blob[:len(blob) // 2])
        with pytest.raises(SnapshotError):
            read_snapshot(path)

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        built = build_experiment(_config())
        built.sim.run(until=30.0)
        write_snapshot(snapshot_experiment(built), str(tmp_path / "s.json"))
        assert os.listdir(tmp_path) == ["s.json"]


class TestNewestCheckpoint:
    def _write(self, directory, t, n):
        built = build_experiment(_config())
        built.sim.run(until=t)
        return write_snapshot(
            snapshot_experiment(built),
            os.path.join(directory, checkpoint_filename(t, n)))

    def test_empty_and_missing_dir(self, tmp_path):
        assert newest_checkpoint(str(tmp_path)) is None
        assert newest_checkpoint(str(tmp_path / "nope")) is None

    def test_picks_highest_valid(self, tmp_path):
        self._write(str(tmp_path), 30.0, 100)
        newest = self._write(str(tmp_path), 60.0, 200)
        assert newest_checkpoint(str(tmp_path)) == newest

    def test_skips_corrupt_newest(self, tmp_path):
        """Crash-mid-write: a truncated newest candidate is skipped and
        the previous valid checkpoint restores instead."""
        older = self._write(str(tmp_path), 30.0, 100)
        newest = self._write(str(tmp_path), 60.0, 200)
        blob = open(newest).read()
        open(newest, "w").write(blob[:200])  # SIGKILL mid-write
        assert newest_checkpoint(str(tmp_path)) == older

    def test_ignores_inflight_tmp_files(self, tmp_path):
        older = self._write(str(tmp_path), 30.0, 100)
        (tmp_path / (checkpoint_filename(60.0, 200) + ".tmp.123")) \
            .write_text("{half a writ")
        assert newest_checkpoint(str(tmp_path)) == older


class TestSnapshotInvariants:
    def test_capture_is_read_only_and_stable(self):
        built = build_experiment(_config())
        built.sim.run(until=90.0)
        check_snapshot_invariants(built)

    def test_digest_is_canonical_crc(self):
        state = {"b": 2, "a": [1, 2.5, None]}
        blob = json.dumps(state, sort_keys=True, separators=(",", ":"))
        assert state_digest(state) == format(
            zlib.crc32(blob.encode()) & 0xFFFFFFFF, "08x")


class TestRoundTripProperty:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(boundary=st.integers(min_value=50, max_value=1500))
    def test_snapshot_restore_snapshot_byte_stable(self, boundary):
        """snapshot -> replay-restore -> snapshot is byte-stable at an
        arbitrary event boundary, not just checkpoint-tick boundaries."""
        config = _config(seed=4242)
        a = build_experiment(config)
        a.sim.run_to_event(boundary)
        snap = snapshot_experiment(a)
        assert snap["event_count"] == boundary

        b = build_experiment(config)
        b.sim.run_to_event(boundary)
        again = snapshot_experiment(b)
        assert json.dumps(snap, sort_keys=True) == \
            json.dumps(again, sort_keys=True)

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(t=st.floats(min_value=10.0, max_value=110.0,
                       allow_nan=False, allow_infinity=False))
    def test_capture_at_arbitrary_time_is_stable(self, t):
        config = _config(seed=777)
        a = build_experiment(config)
        a.sim.run(until=t)
        b = build_experiment(config)
        b.sim.run(until=t)
        assert state_digest(snapshot_experiment(a)["state"]) == \
            state_digest(snapshot_experiment(b)["state"])
