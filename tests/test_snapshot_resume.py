"""Resume-equals-fresh equality across the kernel variant matrix."""

import pytest

from repro.experiments.configs import smoke_config
from repro.experiments.parallel import summarize, summary_digest
from repro.experiments.runner import (abort_experiment, build_experiment,
                                      run_experiment)
from repro.sim.snapshot import (
    SnapshotError,
    newest_checkpoint,
    read_snapshot,
    resume_experiment,
    write_snapshot,
)


def _digest(result):
    return summary_digest(summarize(result))


class TestResumeEqualsFresh:
    """The tentpole claim in unit form: a restored run's summary digest
    equals the uninterrupted same-seed run's, across the same kernel
    variants the differential-replay matrix covers."""

    @pytest.mark.parametrize("overrides", [
        {},                                # default: fast + batched
        {"fast_paths": False, "state_index": True},
        {"batch_dispatch": False},
    ], ids=["default", "fast-paths-off", "batch-dispatch-off"])
    def test_matrix(self, tmp_path, overrides):
        config = smoke_config(n_clients=4, duration_s=200.0,
                              checkpoint_every_s=60.0,
                              checkpoint_dir=str(tmp_path), **overrides)
        fresh = _digest(run_experiment(config))
        checkpoint = newest_checkpoint(str(tmp_path))
        assert checkpoint is not None
        assert _digest(resume_experiment(checkpoint)) == fresh

    def test_killed_run_resumes_to_fresh_digest(self, tmp_path):
        """The operational shape: run, die mid-flight, restore from the
        newest on-disk checkpoint, match the uninterrupted digest."""
        config = smoke_config(n_clients=4, duration_s=200.0,
                              checkpoint_every_s=50.0,
                              checkpoint_dir=str(tmp_path / "b"))
        fresh = _digest(run_experiment(
            config.with_(checkpoint_dir=str(tmp_path / "a"))))
        built = build_experiment(config)
        built.sim.run(until=130.0)
        abort_experiment(built, RuntimeError("simulated mid-run kill"))
        checkpoint = newest_checkpoint(config.checkpoint_dir)
        assert checkpoint is not None
        assert _digest(resume_experiment(checkpoint)) == fresh

    def test_sharded_2_barrier_restore_matches(self, tmp_path):
        from repro.sim.sharded import run_sharded
        config = smoke_config(decision_points=2, n_clients=8, n_sites=8,
                              total_cpus=400, duration_s=200.0,
                              sync_interval_s=30.0,
                              monitor_interval_s=60.0, name="resume-sh")
        reference = run_sharded(config, n_shards=2)
        ckpt_config = config.with_(checkpoint_every_s=60.0,
                                   checkpoint_dir=str(tmp_path))
        writer = run_sharded(ckpt_config, n_shards=2)
        assert writer.digest == reference.digest  # checkpointing is free
        checkpoint = newest_checkpoint(str(tmp_path))
        assert checkpoint is not None
        restored = run_sharded(ckpt_config, n_shards=2,
                               restore=checkpoint)
        assert restored.digest == reference.digest

    def test_sharded_restore_rejects_workers_mode(self, tmp_path):
        from repro.sim.sharded import run_sharded
        config = smoke_config(decision_points=2, n_clients=8, n_sites=8,
                              total_cpus=400, duration_s=200.0,
                              checkpoint_every_s=60.0,
                              checkpoint_dir=str(tmp_path))
        with pytest.raises(ValueError, match="lockstep-only"):
            run_sharded(config, n_shards=2, mode="workers")


class TestRestoreVerification:
    def _checkpoint(self, tmp_path):
        config = smoke_config(n_clients=4, duration_s=200.0,
                              checkpoint_every_s=60.0,
                              checkpoint_dir=str(tmp_path))
        built = build_experiment(config)
        built.sim.run(until=150.0)
        return newest_checkpoint(str(tmp_path))

    def test_tampered_state_names_diverging_subsystem(self, tmp_path):
        path = self._checkpoint(tmp_path)
        snapshot = read_snapshot(path)
        snapshot["state"]["grid"][0]["busy_cpus"] += 1
        # Re-stamp the section digest so the divergence is discovered by
        # replay verification, not by the file CRC.
        from repro.sim.snapshot import state_digest
        snapshot["digests"]["grid"] = state_digest(
            snapshot["state"]["grid"])
        tampered = write_snapshot(snapshot, str(tmp_path / "bad.json"))
        with pytest.raises(SnapshotError, match="grid"):
            resume_experiment(tampered)

    def test_wrong_event_count_rejected(self, tmp_path):
        path = self._checkpoint(tmp_path)
        snapshot = read_snapshot(path)
        snapshot["event_count"] += 1
        tampered = write_snapshot(snapshot, str(tmp_path / "bad.json"))
        with pytest.raises(SnapshotError):
            resume_experiment(tampered)

    def test_replay_backwards_rejected(self):
        from repro.sim.kernel import Simulator
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=2.0)
        with pytest.raises(ValueError, match="backwards"):
            sim.run_to_event(0)
