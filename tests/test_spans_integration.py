"""End-to-end causal span tracing over real experiment runs.

Covers the acceptance path: a GT3-profile run with spans on yields a
complete causal chain (submit -> brokering -> DP decide annotated with
view staleness -> dispatch -> site queue), same-seed runs export
byte-identical JSONL, spans on/off leaves the run itself untouched,
and the trace-analysis reports work on the exported artifact.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.configs import canonical_gt3, smoke_config
from repro.experiments.runner import run_experiment
from repro.obs.span_analysis import (
    analyze_report,
    critical_path_report,
    load_spans,
    slowest_report,
)


@pytest.fixture(scope="module")
def gt3_run(tmp_path_factory):
    """One scaled-down GT3 run with spans exported (shared per module)."""
    path = tmp_path_factory.mktemp("spans") / "gt3.jsonl"
    config = canonical_gt3(duration_s=1800.0, n_clients=10,
                           spans_enabled=True, spans_path=str(path))
    result = run_experiment(config)
    return result, str(path)


def _children(spans):
    by_parent = {}
    for s in spans:
        by_parent.setdefault(s.get("parent_id"), []).append(s)
    return by_parent


class TestCausalChain:
    def test_gt3_chain_is_complete(self, gt3_run):
        result, path = gt3_run
        spans = load_spans(path)
        by_parent = _children(spans)
        roots = [s for s in spans if s["parent_id"] is None
                 and s["name"] == "submit"
                 and s["attrs"].get("outcome") == "ok"]
        assert roots, "no successfully brokered job traced"
        complete = 0
        for root in roots:
            kids = {s["name"]: s for s in by_parent.get(root["span_id"], [])}
            if "brokering" not in kids or "dispatch" not in kids:
                continue
            grand = by_parent.get(kids["brokering"]["span_id"], [])
            decides = [s for s in grand if s["name"] == "decide"]
            if not decides:
                continue
            decide = decides[0]
            # The decide span runs on the DP and carries view staleness.
            assert decide["node"].startswith("dp")
            assert "staleness_s" in decide["attrs"]
            queue = [s for s in by_parent.get(kids["dispatch"]["span_id"], [])
                     if s["name"] == "queue"]
            if queue:
                assert queue[0]["start"] >= kids["dispatch"]["start"]
            complete += 1
        assert complete > 0, "no job has the full submit->decide chain"

    def test_decide_staleness_is_a_real_age(self, gt3_run):
        _, path = gt3_run
        ages = [s["attrs"]["staleness_s"] for s in load_spans(path)
                if s["name"] == "decide"
                and s["attrs"].get("staleness_s") is not None]
        assert ages, "no decide span carries staleness"
        assert all(a >= 0.0 for a in ages)

    def test_sync_rounds_link_to_remote_receives(self):
        config = smoke_config(decision_points=2, n_clients=6,
                              duration_s=1200.0, sync_interval_s=60.0,
                              spans_enabled=True)
        result = run_experiment(config)
        spans = [s.to_dict() for s in result.sim.spans.spans()]
        by_id = {s["span_id"]: s for s in spans}
        recvs = [s for s in spans if s["name"] == "sync.recv"]
        assert recvs, "no sync.recv spans in a 2-DP run"
        for r in recvs:
            parent = by_id[r["parent_id"]]
            assert parent["name"] in ("sync.flood", "sync.delta")
            assert parent["node"] != r["node"]  # crossed the wire
            assert r["start"] >= parent["start"]
        # The lag histogram fed by merge_remote_records saw traffic too.
        lag = result.sim.metrics.histogram("sync.lag_s")
        assert lag.count > 0


class TestDeterminism:
    def test_same_seed_byte_identical_jsonl(self, tmp_path):
        blobs = []
        for name in ("a", "b"):
            path = tmp_path / f"{name}.jsonl"
            config = smoke_config(duration_s=1200.0, n_clients=6,
                                  spans_enabled=True, spans_path=str(path))
            run_experiment(config)
            blobs.append(path.read_bytes())
        assert blobs[0] == blobs[1]

    def test_spans_on_off_run_identical(self):
        off = run_experiment(smoke_config(duration_s=1200.0, n_clients=6))
        on = run_experiment(smoke_config(duration_s=1200.0, n_clients=6,
                                         spans_enabled=True))
        assert off.sim.events_executed == on.sim.events_executed
        assert off.summary() == on.summary()
        assert len(on.sim.spans) > 0

    def test_sampling_thins_roots_not_determinism(self, tmp_path):
        paths = [tmp_path / "s1.jsonl", tmp_path / "s2.jsonl"]
        for path in paths:
            config = smoke_config(duration_s=1200.0, n_clients=6,
                                  spans_enabled=True, spans_sample=4,
                                  spans_path=str(path))
            result = run_experiment(config)
        assert paths[0].read_bytes() == paths[1].read_bytes()
        rec = result.sim.spans
        assert rec.roots_dropped > 0
        assert rec.roots_sampled + rec.roots_dropped == rec.roots_seen
        # Sampled traces stay complete: every parent link resolves.
        spans = load_spans(str(paths[0]))
        ids = {s["span_id"] for s in spans}
        assert all(s["parent_id"] in ids for s in spans
                   if s["parent_id"] is not None)


class TestAnalysisReports:
    def test_analyze_report_sections(self, gt3_run):
        _, path = gt3_run
        report = analyze_report(load_spans(path))
        assert "traces=" in report and "orphans=" in report
        assert "submit outcomes:" in report
        assert "decide staleness_s:" in report

    def test_critical_path_marks_chain(self, gt3_run):
        _, path = gt3_run
        spans = load_spans(path)
        jid = min(s["attrs"]["jid"] for s in spans
                  if s["name"] == "submit" and "jid" in s["attrs"])
        report = critical_path_report(spans, jid)
        assert f"job {jid} trace" in report
        assert "*" in report and "submit" in report

    def test_critical_path_unknown_job_lists_known(self, gt3_run):
        _, path = gt3_run
        report = critical_path_report(load_spans(path), 10 ** 9)
        assert "no submit trace" in report and "first recorded jids" in report

    def test_slowest_report_sorted(self, gt3_run):
        _, path = gt3_run
        report = slowest_report(load_spans(path), n=5)
        lines = [ln for ln in report.splitlines()
                 if ln.strip() and not ln.startswith("---")]
        assert "total_s" in lines[0]
        totals = [float(ln.split()[2]) for ln in lines[1:]]
        assert totals == sorted(totals, reverse=True)


class TestSpanProperties:
    """Nesting/acyclicity hold even when chaos severs causal chains."""

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=1, max_value=2 ** 31 - 1),
           loss=st.sampled_from([0.0, 0.05, 0.2]))
    def test_span_intervals_nest_and_links_are_acyclic(self, seed, loss):
        config = smoke_config(decision_points=2, n_clients=5,
                              duration_s=900.0, sync_interval_s=120.0,
                              wan_loss_rate=loss, seed=seed,
                              spans_enabled=True)
        result = run_experiment(config)
        spans = [s.to_dict() for s in result.sim.spans.spans()]
        assert spans, "a traced run must record spans"
        by_id = {s["span_id"]: s for s in spans}
        assert len(by_id) == len(spans)  # ids unique
        for s in spans:
            # Children never start before their parent: causality on
            # the sim clock survives loss (a dropped message simply
            # means the child was never created).
            pid = s["parent_id"]
            if pid is not None:
                parent = by_id[pid]
                assert s["start"] >= parent["start"] - 1e-9
                assert s["trace_id"] == parent["trace_id"]
            if s["end"] is not None:
                assert s["end"] >= s["start"]
            # Orphans are flagged, never silently dropped.
            assert s["orphan"] == (s["end"] is None)
            # Parent links are acyclic (walk terminates at a root).
            seen = set()
            cur = s
            while cur["parent_id"] is not None:
                assert cur["span_id"] not in seen
                seen.add(cur["span_id"])
                cur = by_id[cur["parent_id"]]


class TestLoadSpansRobustness:
    """Satellite: load_spans on empty, truncated, and malformed files.

    Strict mode is for byte-exact exports from finished runs; tolerant
    mode is for the truncated artifact a killed run leaves behind.
    """

    def test_empty_file(self, tmp_path):
        p = tmp_path / "empty.jsonl"
        p.write_text("")
        assert load_spans(str(p)) == []

    def test_blank_lines_ignored(self, tmp_path):
        p = tmp_path / "s.jsonl"
        p.write_text('\n{"span_id": "a", "start": 1.0}\n\n')
        assert len(load_spans(str(p))) == 1

    def test_malformed_line_raises_with_lineno(self, tmp_path):
        p = tmp_path / "s.jsonl"
        p.write_text('{"span_id": "a"}\n{broken\n')
        with pytest.raises(ValueError, match=r"s\.jsonl:2"):
            load_spans(str(p))

    def test_truncated_final_line_raises_strict(self, tmp_path):
        p = tmp_path / "s.jsonl"
        p.write_text('{"span_id": "a"}\n{"span_id": "b", "sta')
        with pytest.raises(ValueError, match=":2"):
            load_spans(str(p))

    def test_tolerant_skips_truncation_keeps_valid_prefix(self, tmp_path):
        p = tmp_path / "s.jsonl"
        p.write_text('{"span_id": "a"}\nnonsense\n'
                     '{"span_id": "b"}\n{"span_id": "c", "sta')
        spans = load_spans(str(p), tolerant=True)
        assert [s["span_id"] for s in spans] == ["a", "b"]

    def test_non_object_line_rejected_strict_skipped_tolerant(
            self, tmp_path):
        p = tmp_path / "s.jsonl"
        p.write_text('[1, 2]\n{"span_id": "a"}\n')
        with pytest.raises(ValueError, match="expected an object"):
            load_spans(str(p))
        assert [s["span_id"] for s in load_spans(str(p), tolerant=True)] \
            == ["a"]
