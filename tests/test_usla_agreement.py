"""Tests for WS-Agreement-style documents."""

import pytest

from repro.usla import (
    Agreement,
    AgreementContext,
    FairShareRule,
    Goal,
    ServiceTerm,
    ShareKind,
)


def make_agreement():
    return Agreement(
        name="grid-atlas",
        context=AgreementContext(provider="grid", consumer="atlas"),
        terms=[ServiceTerm("cpu-share", FairShareRule("grid", "atlas", 40.0))],
        goals=[Goal("utilization", ">=", 0.5)],
        children=[
            Agreement(
                name="atlas-higgs",
                context=AgreementContext(provider="atlas", consumer="atlas.higgs"),
                terms=[ServiceTerm("cpu-share",
                                   FairShareRule("atlas", "atlas.higgs", 50.0,
                                                 ShareKind.UPPER_LIMIT))],
            )
        ],
    )


class TestContext:
    def test_validation(self):
        with pytest.raises(ValueError):
            AgreementContext(provider="", consumer="x")

    def test_expiration(self):
        ag = Agreement("a", AgreementContext("p", "c", expiration_s=100.0))
        assert not ag.is_expired(99.0)
        assert ag.is_expired(100.0)

    def test_no_expiration(self):
        ag = Agreement("a", AgreementContext("p", "c"))
        assert not ag.is_expired(1e12)


class TestGoals:
    @pytest.mark.parametrize("cmp,obs,expected", [
        (">=", 0.5, True), (">=", 0.4, False),
        ("<=", 0.4, True), ("<=", 0.6, False),
        (">", 0.51, True), ("<", 0.49, True), ("==", 0.5, True),
    ])
    def test_comparators(self, cmp, obs, expected):
        assert Goal("m", cmp, 0.5).satisfied_by(obs) is expected

    def test_unknown_comparator_rejected(self):
        with pytest.raises(ValueError):
            Goal("m", "!=", 0.5)

    def test_check_goals_missing_metric_is_unmet(self):
        ag = make_agreement()
        assert ag.check_goals({}) == {"utilization": False}
        assert ag.check_goals({"utilization": 0.7}) == {"utilization": True}


class TestRecursion:
    def test_all_rules_flattens_tree(self):
        rules = make_agreement().all_rules()
        assert len(rules) == 2
        assert {r.consumer for r in rules} == {"atlas", "atlas.higgs"}


class TestSerialization:
    def test_roundtrip(self):
        ag = make_agreement()
        restored = Agreement.from_dict(ag.to_dict())
        assert restored.name == ag.name
        assert restored.context == ag.context
        assert restored.terms == ag.terms
        assert restored.goals == ag.goals
        assert len(restored.children) == 1
        assert restored.children[0].terms == ag.children[0].terms

    def test_version_roundtrip(self):
        ag = make_agreement()
        ag.bump_version()
        assert Agreement.from_dict(ag.to_dict()).version == 2
