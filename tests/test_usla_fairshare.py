"""Tests for fair-share rules and the textual parser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.usla import (
    FairShareRule,
    ResourceType,
    ShareKind,
    UslaParseError,
    format_rule,
    parse_policy,
    parse_rule,
)


class TestFairShareRule:
    def test_fraction(self):
        r = FairShareRule("grid", "atlas", 25.0)
        assert r.fraction == 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            FairShareRule("grid", "v", 0.0)
        with pytest.raises(ValueError):
            FairShareRule("grid", "v", 101.0)
        with pytest.raises(ValueError):
            FairShareRule("", "v", 10.0)
        with pytest.raises(ValueError):
            FairShareRule("grid", "", 10.0)

    def test_target_never_violated(self):
        r = FairShareRule("grid", "v", 25.0, ShareKind.TARGET)
        assert not r.violated_by(0.99)

    def test_upper_limit_violation(self):
        r = FairShareRule("grid", "v", 25.0, ShareKind.UPPER_LIMIT)
        assert r.violated_by(0.30)
        assert not r.violated_by(0.25)
        assert not r.violated_by(0.30, tolerance=0.10)

    def test_lower_limit_violation(self):
        r = FairShareRule("grid", "v", 25.0, ShareKind.LOWER_LIMIT)
        assert r.violated_by(0.10)
        assert not r.violated_by(0.25)

    def test_negative_usage_rejected(self):
        r = FairShareRule("grid", "v", 25.0)
        with pytest.raises(ValueError):
            r.violated_by(-0.1)

    def test_headroom(self):
        upper = FairShareRule("grid", "v", 40.0, ShareKind.UPPER_LIMIT)
        assert upper.headroom(0.25) == pytest.approx(0.15)
        assert upper.headroom(0.50) == pytest.approx(-0.10)
        lower = FairShareRule("grid", "v", 40.0, ShareKind.LOWER_LIMIT)
        assert lower.headroom(0.99) == float("inf")


class TestParser:
    def test_parse_target(self):
        r = parse_rule("grid:atlas=40%")
        assert (r.provider, r.consumer, r.percent, r.kind) == \
            ("grid", "atlas", 40.0, ShareKind.TARGET)
        assert r.resource is ResourceType.CPU

    def test_parse_upper(self):
        assert parse_rule("grid:cms=30%+").kind is ShareKind.UPPER_LIMIT

    def test_parse_lower(self):
        assert parse_rule("grid:cms=10%-").kind is ShareKind.LOWER_LIMIT

    def test_parse_resource_prefix(self):
        r = parse_rule("storage|site003:atlas=25%+")
        assert r.resource is ResourceType.STORAGE
        assert r.provider == "site003"

    def test_parse_dotted_consumer(self):
        r = parse_rule("atlas:atlas.higgs=50%")
        assert r.consumer == "atlas.higgs"

    def test_parse_fractional_percent(self):
        assert parse_rule("g:c=12.5%").percent == 12.5

    def test_whitespace_tolerated(self):
        assert parse_rule("  grid : atlas = 40 % + ").percent == 40.0

    @pytest.mark.parametrize("bad", [
        "", "gridatlas=40%", "grid:atlas=40", "grid:atlas=x%",
        "grid:atlas=40%*", "disk|grid:atlas=40%", "grid:=40%",
        "grid:atlas=-5%",
    ])
    def test_parse_errors(self, bad):
        with pytest.raises(UslaParseError):
            parse_rule(bad)

    def test_out_of_range_percent_is_parse_error(self):
        with pytest.raises(UslaParseError):
            parse_rule("grid:atlas=150%")

    def test_parse_policy_document(self):
        doc = """
        # grid-level shares
        grid:atlas=40%
        grid:cms=30%+    # cap cms

        atlas:atlas.higgs=50%
        """
        rules = parse_policy(doc)
        assert len(rules) == 3
        assert rules[1].kind is ShareKind.UPPER_LIMIT

    def test_parse_policy_reports_line_number(self):
        with pytest.raises(UslaParseError, match="line 2"):
            parse_policy("grid:a=10%\nbogus line\n")


rule_strategy = st.builds(
    FairShareRule,
    provider=st.from_regex(r"[A-Za-z0-9_\-]{1,12}", fullmatch=True),
    consumer=st.from_regex(r"[A-Za-z0-9_\-]{1,12}(\.[A-Za-z0-9_\-]{1,8}){0,2}",
                           fullmatch=True),
    percent=st.floats(min_value=0.01, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
    kind=st.sampled_from(list(ShareKind)),
    resource=st.sampled_from(list(ResourceType)),
)


@given(rule_strategy)
def test_format_parse_roundtrip(rule):
    parsed = parse_rule(format_rule(rule))
    assert parsed.provider == rule.provider
    assert parsed.consumer == rule.consumer
    assert parsed.kind == rule.kind
    assert parsed.resource == rule.resource
    assert parsed.percent == pytest.approx(rule.percent, rel=1e-6)


@given(rule_strategy, st.floats(min_value=0, max_value=2, allow_nan=False))
def test_headroom_sign_consistent_with_violation(rule, usage):
    """Negative headroom on an upper limit implies violation and vice versa."""
    if rule.kind is ShareKind.UPPER_LIMIT:
        assert (rule.headroom(usage) < 0) == rule.violated_by(usage)
