"""Tests for automated USLA negotiation."""

import pytest

from repro.net import ConstantLatency, Network
from repro.sim import Simulator
from repro.usla import Agreement, AgreementContext, FairShareRule, ServiceTerm, UslaStore
from repro.usla.negotiation import (
    ConsumerNegotiator,
    NegotiationOutcome,
    ProviderNegotiator,
)


@pytest.fixture
def env():
    sim = Simulator()
    net = Network(sim, ConstantLatency(0.05))
    store = UslaStore("site0")
    provider = ProviderNegotiator(net, "site0", store,
                                  max_commit_fraction=0.8)
    consumer = ConsumerNegotiator(net, "atlas-vo", sim)
    return sim, net, store, provider, consumer


def make_offer(pct, name="site0-atlas", consumer="atlas"):
    return Agreement(
        name=name,
        context=AgreementContext(provider="site0", consumer=consumer),
        terms=[ServiceTerm("cpu", FairShareRule("site0", consumer, pct))])


def run_negotiation(sim, consumer, provider_id, offer, min_fraction=0.5):
    proc = sim.process(consumer.negotiate(provider_id, offer,
                                          min_fraction=min_fraction))
    sim.run()
    assert proc.ok, proc.value
    return proc.value


class TestAccept:
    def test_full_headroom_accepts(self, env):
        sim, net, store, provider, consumer = env
        outcome = run_negotiation(sim, consumer, "site0", make_offer(40.0))
        assert outcome.status == "accepted"
        assert outcome.rounds == 1
        assert outcome.agreement.terms[0].rule.percent == 40.0
        # Published into the provider's store -> enforceable.
        assert "site0-atlas" in store
        assert provider.accepted == 1

    def test_sequential_consumers_respect_commit_cap(self, env):
        sim, net, store, provider, consumer = env
        run_negotiation(sim, consumer, "site0", make_offer(50.0))
        # 30% headroom left of the 80% commit cap.
        outcome = run_negotiation(
            sim, consumer, "site0",
            make_offer(50.0, name="site0-cms", consumer="cms"),
            min_fraction=0.5)
        assert outcome.status == "accepted"  # countered at 30%, confirmed
        assert outcome.rounds == 2
        assert outcome.agreement.terms[0].rule.percent == pytest.approx(30.0)
        assert provider.countered == 1


class TestCounterAndReject:
    def test_counter_below_min_fraction_walks_away(self, env):
        sim, net, store, provider, consumer = env
        run_negotiation(sim, consumer, "site0", make_offer(70.0))
        # Only 10% headroom; cms insists on >= 80% of its 50% ask.
        outcome = run_negotiation(
            sim, consumer, "site0",
            make_offer(50.0, name="site0-cms", consumer="cms"),
            min_fraction=0.8)
        assert outcome.status == "countered"
        assert outcome.agreement.terms[0].rule.percent == pytest.approx(10.0)
        assert "site0-cms" not in store  # not published

    def test_no_headroom_rejects(self, env):
        sim, net, store, provider, consumer = env
        run_negotiation(sim, consumer, "site0", make_offer(80.0))
        outcome = run_negotiation(
            sim, consumer, "site0",
            make_offer(20.0, name="site0-cms", consumer="cms"))
        assert outcome.status == "rejected"
        assert outcome.agreement is None
        assert provider.rejected == 1

    def test_unknown_provider_fails(self, env):
        sim, net, store, provider, consumer = env
        proc = sim.process(consumer.negotiate("ghost", make_offer(10.0)))
        sim.run()
        assert proc.ok is False and isinstance(proc.value, KeyError)


class TestBookkeeping:
    def test_committed_fraction_counts_store(self, env):
        sim, net, store, provider, consumer = env
        run_negotiation(sim, consumer, "site0", make_offer(25.0))
        from repro.usla.fairshare import ResourceType
        assert provider.committed_fraction("site0", ResourceType.CPU) == \
            pytest.approx(0.25)

    def test_outcomes_recorded(self, env):
        sim, net, store, provider, consumer = env
        run_negotiation(sim, consumer, "site0", make_offer(10.0))
        assert len(consumer.outcomes) == 1
        assert isinstance(consumer.outcomes[0], NegotiationOutcome)

    def test_min_fraction_validation(self, env):
        sim, net, store, provider, consumer = env
        proc = sim.process(consumer.negotiate("site0", make_offer(10.0),
                                              min_fraction=0.0))
        sim.run()
        assert proc.ok is False and isinstance(proc.value, ValueError)

    def test_provider_validation(self, env):
        sim, net, *_ = env
        with pytest.raises(ValueError):
            ProviderNegotiator(net, "p2", UslaStore(),
                               max_commit_fraction=0.0)

    def test_negotiation_consumes_time(self, env):
        sim, net, store, provider, consumer = env
        run_negotiation(sim, consumer, "site0", make_offer(10.0))
        assert sim.now >= 0.3  # 2 x latency + service time
