"""Tests for policy evaluation (admission, entitlements, violations)."""

import pytest

from repro.usla import FairShareRule, PolicyEngine, ShareKind, parse_policy


@pytest.fixture
def engine():
    return PolicyEngine(parse_policy("""
        grid:atlas=40%
        grid:cms=30%+
        grid:cdf=10%-
        atlas:atlas.higgs=50%+
    """))


class TestIndexing:
    def test_len_and_iter(self, engine):
        assert len(engine) == 4
        assert len(list(engine)) == 4

    def test_rules_for_pair(self, engine):
        rules = engine.rules_for("grid", "atlas")
        assert len(rules) == 1 and rules[0].percent == 40.0

    def test_rules_for_provider(self, engine):
        assert len(engine.rules_for("grid")) == 3

    def test_remove(self, engine):
        assert engine.remove_rules("grid", "cms") == 1
        assert engine.rules_for("grid", "cms") == []


class TestEntitlements:
    def test_entitled_fraction_target(self, engine):
        assert engine.entitled_fraction("grid", "atlas") == 0.40

    def test_entitled_fraction_default_opportunistic(self, engine):
        assert engine.entitled_fraction("grid", "unknown-vo") == 1.0

    def test_entitled_fraction_min_of_rules(self):
        e = PolicyEngine([FairShareRule("g", "v", 40.0),
                          FairShareRule("g", "v", 25.0, ShareKind.UPPER_LIMIT)])
        assert e.entitled_fraction("g", "v") == 0.25

    def test_lower_limit_does_not_cap(self, engine):
        assert engine.entitled_fraction("grid", "cdf") == 1.0

    def test_guaranteed_fraction(self, engine):
        assert engine.guaranteed_fraction("grid", "cdf") == 0.10
        assert engine.guaranteed_fraction("grid", "atlas") == 0.0


class TestAdmission:
    def test_within_share_allowed(self, engine):
        d = engine.check_admission("grid", "atlas", usage_fraction=0.20,
                                   request_fraction=0.10)
        assert d.allowed and d.headroom_fraction == pytest.approx(0.20)

    def test_over_share_denied(self, engine):
        d = engine.check_admission("grid", "cms", usage_fraction=0.29,
                                   request_fraction=0.05)
        assert not d.allowed
        assert d.binding_rule.percent == 30.0
        assert "upper_limit" in d.reason

    def test_no_rule_admitted(self, engine):
        d = engine.check_admission("grid", "newvo", usage_fraction=0.9)
        assert d.allowed and d.binding_rule is None

    def test_exactly_at_cap_allowed(self, engine):
        d = engine.check_admission("grid", "cms", usage_fraction=0.25,
                                   request_fraction=0.05)
        assert d.allowed

    def test_negative_inputs_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.check_admission("grid", "atlas", usage_fraction=-0.1)

    def test_recursive_group_admission(self, engine):
        d = engine.check_admission("atlas", "atlas.higgs", usage_fraction=0.55)
        assert not d.allowed


class TestPolicyProperties:
    """Hypothesis checks on policy-engine algebra."""

    from hypothesis import given
    from hypothesis import strategies as st

    shares = st.lists(st.floats(min_value=0.1, max_value=100.0,
                                allow_nan=False), min_size=1, max_size=6)

    @given(shares)
    def test_entitled_fraction_is_min_of_caps(self, percents):
        from repro.usla import FairShareRule, PolicyEngine, ShareKind
        engine = PolicyEngine(
            FairShareRule("g", "v", p, ShareKind.UPPER_LIMIT)
            for p in percents)
        assert engine.entitled_fraction("g", "v") == \
            pytest.approx(min(percents) / 100.0)

    @given(shares, st.floats(min_value=0.0, max_value=2.0, allow_nan=False))
    def test_admission_monotone_in_usage(self, percents, usage):
        """If denied at usage u, also denied at any higher usage."""
        from repro.usla import FairShareRule, PolicyEngine, ShareKind
        engine = PolicyEngine(
            FairShareRule("g", "v", p, ShareKind.UPPER_LIMIT)
            for p in percents)
        d_low = engine.check_admission("g", "v", usage, 0.05)
        d_high = engine.check_admission("g", "v", usage + 0.1, 0.05)
        if not d_low.allowed:
            assert not d_high.allowed

    @given(shares)
    def test_guaranteed_never_exceeds_entitled_when_consistent(self, percents):
        """A floor above the cap is a provider misconfiguration; with
        floors below caps, guaranteed <= entitled always."""
        from repro.usla import FairShareRule, PolicyEngine, ShareKind
        cap = max(percents)
        floor = min(percents) / 2.0
        engine = PolicyEngine([
            FairShareRule("g", "v", cap, ShareKind.UPPER_LIMIT),
            FairShareRule("g", "v", floor, ShareKind.LOWER_LIMIT)])
        assert engine.guaranteed_fraction("g", "v") <= \
            engine.entitled_fraction("g", "v") + 1e-12


class TestViolations:
    def test_violations_detected(self, engine):
        v = engine.violations("grid", {"cms": 0.35, "atlas": 0.5, "cdf": 0.05})
        violated = {(r.consumer, r.kind) for r, _ in v}
        # cms exceeded its upper limit; cdf fell below its floor; atlas's
        # target is advisory.
        assert violated == {("cms", ShareKind.UPPER_LIMIT),
                            ("cdf", ShareKind.LOWER_LIMIT)}

    def test_no_violations_when_within(self, engine):
        assert engine.violations("grid", {"cms": 0.30, "cdf": 0.10}) == []

    def test_tolerance(self, engine):
        assert engine.violations("grid", {"cms": 0.31}, tolerance=0.02) == []
