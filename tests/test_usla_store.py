"""Tests for the USLA store, including merge (dissemination) properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.usla import (
    Agreement,
    AgreementContext,
    FairShareRule,
    ServiceTerm,
    UslaStore,
)


def make_ag(name, version=1, provider="grid", consumer="atlas", pct=40.0):
    return Agreement(
        name=name, version=version,
        context=AgreementContext(provider=provider, consumer=consumer),
        terms=[ServiceTerm("cpu", FairShareRule(provider, consumer, pct))],
    )


class TestPublish:
    def test_publish_and_get(self):
        store = UslaStore("dp0")
        store.publish(make_ag("a"))
        assert store.get("a").name == "a"
        assert "a" in store and len(store) == 1

    def test_republish_requires_newer_version(self):
        store = UslaStore()
        store.publish(make_ag("a", version=2))
        with pytest.raises(ValueError):
            store.publish(make_ag("a", version=2))
        store.publish(make_ag("a", version=3))
        assert store.get("a").version == 3

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            UslaStore().get("nope")

    def test_remove_idempotent(self):
        store = UslaStore()
        store.publish(make_ag("a"))
        store.remove("a")
        store.remove("a")
        assert "a" not in store


class TestDiscovery:
    def test_filter_by_provider(self):
        store = UslaStore()
        store.publish(make_ag("a", provider="grid"))
        store.publish(make_ag("b", provider="site1", consumer="cms"))
        assert [a.name for a in store.discover(provider="grid")] == ["a"]

    def test_filter_by_consumer(self):
        store = UslaStore()
        store.publish(make_ag("a", consumer="atlas"))
        store.publish(make_ag("b", consumer="cms"))
        assert [a.name for a in store.discover(consumer="cms")] == ["b"]

    def test_expired_excluded(self):
        store = UslaStore()
        ag = Agreement("a", AgreementContext("p", "c", expiration_s=10.0))
        store.publish(ag)
        assert store.discover(now=5.0) == [ag]
        assert store.discover(now=20.0) == []

    def test_policy_engine_flattening(self):
        store = UslaStore()
        store.publish(make_ag("a", pct=40.0))
        engine = store.policy_engine()
        assert engine.entitled_fraction("grid", "atlas") == 0.40


class TestMerge:
    def test_merge_adopts_newer(self):
        store = UslaStore()
        store.publish(make_ag("a", version=1))
        adopted = store.merge_from([make_ag("a", version=3), make_ag("b")])
        assert adopted == 2
        assert store.get("a").version == 3

    def test_merge_ignores_older(self):
        store = UslaStore()
        store.publish(make_ag("a", version=5))
        assert store.merge_from([make_ag("a", version=2)]) == 0
        assert store.get("a").version == 5

    def test_wire_roundtrip(self):
        store = UslaStore()
        store.publish(make_ag("a", version=4))
        restored = UslaStore.import_wire(store.export())
        assert len(restored) == 1 and restored[0].version == 4


versions = st.dictionaries(
    keys=st.sampled_from(["a", "b", "c", "d"]),
    values=st.integers(min_value=1, max_value=9),
    min_size=0, max_size=4,
)


def store_from(state: dict) -> UslaStore:
    s = UslaStore()
    for name, v in state.items():
        s.publish(make_ag(name, version=v))
    return s


def state_of(s: UslaStore) -> dict:
    return {ag.name: ag.version for ag in s}


@given(versions, versions)
def test_merge_commutative(sa, sb):
    """A merged-with-B equals B merged-with-A (by name/version state)."""
    ab = store_from(sa)
    ab.merge_from(list(store_from(sb)))
    ba = store_from(sb)
    ba.merge_from(list(store_from(sa)))
    assert state_of(ab) == state_of(ba)


@given(versions, versions, versions)
def test_merge_associative(sa, sb, sc):
    left = store_from(sa)
    left.merge_from(list(store_from(sb)))
    left.merge_from(list(store_from(sc)))

    bc = store_from(sb)
    bc.merge_from(list(store_from(sc)))
    right = store_from(sa)
    right.merge_from(list(bc))
    assert state_of(left) == state_of(right)


@given(versions)
def test_merge_idempotent(sa):
    s = store_from(sa)
    before = state_of(s)
    assert s.merge_from(list(store_from(sa))) == 0
    assert state_of(s) == before
