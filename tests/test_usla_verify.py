"""Tests for post-hoc USLA compliance verification."""

import pytest

from repro.usla import parse_policy, verify_usage


@pytest.fixture
def rules():
    return parse_policy("""
        grid:atlas=40%
        grid:cms=30%+
        grid:cdf=10%-
    """)


class TestVerifyUsage:
    def test_compliant_snapshot(self, rules):
        report = verify_usage(rules, {("grid", "atlas"): 0.38,
                                      ("grid", "cms"): 0.28,
                                      ("grid", "cdf"): 0.12})
        assert report.compliant
        assert report.violations == []

    def test_upper_violation(self, rules):
        report = verify_usage(rules, {("grid", "cms"): 0.45})
        assert not report.compliant
        assert any("cms" in v for v in report.violations)

    def test_lower_violation_with_missing_usage(self, rules):
        """A consumer with a floor and zero observed usage is violated."""
        report = verify_usage(rules, {("grid", "atlas"): 0.4})
        entry = report.entry("grid", "cdf")
        assert not entry.compliant
        assert entry.observed_fraction == 0.0

    def test_target_error_signed(self, rules):
        report = verify_usage(rules, {("grid", "atlas"): 0.50,
                                      ("grid", "cdf"): 0.2})
        assert report.entry("grid", "atlas").target_error == pytest.approx(0.10)

    def test_tolerance_suppresses_marginal_violation(self, rules):
        report = verify_usage(rules, {("grid", "cms"): 0.31,
                                      ("grid", "cdf"): 0.10},
                              tolerance=0.02)
        assert report.compliant

    def test_usage_without_rules_reported_ok(self, rules):
        report = verify_usage(rules, {("grid", "newvo"): 0.9,
                                      ("grid", "cdf"): 0.1})
        assert report.entry("grid", "newvo").compliant

    def test_entry_lookup_missing(self, rules):
        report = verify_usage(rules, {})
        with pytest.raises(KeyError):
            report.entry("grid", "nothere")

    def test_summary_renders(self, rules):
        report = verify_usage(rules, {("grid", "cms"): 0.45,
                                      ("grid", "cdf"): 0.1})
        text = report.summary()
        assert "VIOLATED" in text and "OK" in text


class TestVerifyGoals:
    @pytest.fixture(scope="class")
    def run_result(self):
        from repro.experiments import smoke_config, run_experiment
        return run_experiment(smoke_config(n_clients=8, duration_s=200.0))

    def test_goals_checked_against_measured_metrics(self, run_result):
        from repro.usla import (Agreement, AgreementContext, Goal,
                                verify_goals)
        ag = Agreement(
            "slo", AgreementContext("grid", "ops"),
            goals=[Goal("utilization", ">=", 0.0),
                   Goal("accuracy", ">=", 0.5),
                   Goal("response_s", "<=", 0.001),     # absurd: unmet
                   Goal("throughput_qps", ">", 0.01)])
        outcome = verify_goals(ag, run_result)
        assert outcome["utilization"] is True
        assert outcome["accuracy"] is True
        assert outcome["response_s"] is False
        assert outcome["throughput_qps"] is True

    def test_unknown_metric_is_unmet(self, run_result):
        from repro.usla import (Agreement, AgreementContext, Goal,
                                verify_goals)
        ag = Agreement("slo", AgreementContext("g", "c"),
                       goals=[Goal("made-up-metric", ">=", 0.0)])
        assert verify_goals(ag, run_result) == {"made-up-metric": False}
