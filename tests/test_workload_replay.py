"""Tests for trace-driven workload replay."""

import numpy as np
import pytest

from repro.core import DecisionPoint, GruberClient, LeastUsedSelector
from repro.experiments import smoke_config, run_experiment
from repro.grid import GridBuilder
from repro.net import ConstantLatency, Network
from repro.sim import RngRegistry, Simulator
from repro.workloads import TraceRecorder, workload_from_job_trace

from tests.test_core_client import FAST_PROFILE


@pytest.fixture(scope="module")
def recorded():
    """A finished smoke run whose trace we replay."""
    return run_experiment(smoke_config(n_clients=6, duration_s=300.0))


class TestWorkloadFromTrace:
    def test_reconstruction_matches_trace(self, recorded):
        wl = workload_from_job_trace(recorded.trace)
        jobs = recorded.trace.job_arrays()
        n = int((~np.isnan(jobs["created_at"])).sum())
        assert len(wl) == n
        assert np.all(np.diff(wl.arrivals) >= 0)  # time-ordered
        assert set(wl.vo_names) <= set(jobs["vo"])
        assert wl.cpus.sum() == jobs["cpus"].sum()

    def test_materialized_jobs_reproduce_attributes(self, recorded):
        wl = workload_from_job_trace(recorded.trace)
        job = wl.job_at(0)
        assert job.cpus == int(wl.cpus[0])
        assert job.duration_s == float(wl.durations[0])

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            workload_from_job_trace(TraceRecorder())

    def test_csv_roundtrip_then_replay(self, recorded, tmp_path):
        path = str(tmp_path / "jobs.csv")
        recorded.trace.save_jobs_csv(path)
        loaded = TraceRecorder.load_jobs_csv(path)
        wl = workload_from_job_trace(loaded)
        assert len(wl) == len(workload_from_job_trace(recorded.trace))

    def test_replay_drives_a_fresh_broker(self, recorded):
        """The reconstructed workload runs end-to-end on a new setup."""
        sim = Simulator()
        rng = RngRegistry(99)
        net = Network(sim, ConstantLatency(0.02))
        grid = GridBuilder(sim, rng.stream("grid")).uniform(
            n_sites=6, cpus_per_site=64, n_vos=recorded.config.n_vos,
            groups_per_vo=recorded.config.groups_per_vo)
        dp = DecisionPoint(sim, net, "dp0", grid, FAST_PROFILE,
                           rng.stream("dp"), monitor_interval_s=600.0)
        dp.start(neighbors=[])
        trace = TraceRecorder()
        client = GruberClient(sim, net, "replay-host", "dp0", grid,
                              workload_from_job_trace(recorded.trace),
                              selector=LeastUsedSelector(rng.stream("sel")),
                              profile=FAST_PROFILE, rng=rng.stream("cl"),
                              trace=trace, timeout_s=15.0,
                              state_response_kb=0.0)
        client.start()
        sim.run(until=recorded.config.duration_s + 100.0)
        assert client.n_handled > 0
        assert len(client.jobs) > 0
