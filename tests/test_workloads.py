"""Tests for workload models, generation, and trace recording."""

import math

import numpy as np
import pytest

from repro.grid import Job, VORegistry
from repro.sim import RngRegistry
from repro.workloads import JobModel, TraceRecorder, WorkloadGenerator


@pytest.fixture
def rng():
    return RngRegistry(0).stream("workload")


@pytest.fixture
def vos():
    reg = VORegistry()
    for v in range(3):
        reg.create(f"vo{v}", n_groups=2, users_per_group=2)
    return reg


class TestJobModel:
    def test_duration_mean(self, rng):
        model = JobModel(duration_mean_s=600.0, duration_sigma=0.8,
                         min_duration_s=1.0)
        d = model.draw_durations(rng, 20000)
        assert np.mean(d) == pytest.approx(600.0, rel=0.05)

    def test_duration_floor(self, rng):
        model = JobModel(duration_mean_s=60.0, duration_sigma=2.0,
                         min_duration_s=30.0)
        assert model.draw_durations(rng, 5000).min() >= 30.0

    def test_cpu_distribution(self, rng):
        model = JobModel()
        cpus = model.draw_cpus(rng, 10000)
        assert set(np.unique(cpus)) <= {1, 2, 4, 8, 16}
        assert np.mean(cpus == 1) == pytest.approx(0.40, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            JobModel(duration_mean_s=0.0)
        with pytest.raises(ValueError):
            JobModel(cpu_choices=(1, 2), cpu_weights=(1.0,))
        with pytest.raises(ValueError):
            JobModel(cpu_choices=(1, 2), cpu_weights=(0.4, 0.4))
        with pytest.raises(ValueError):
            JobModel(cpu_choices=(0, 2), cpu_weights=(0.5, 0.5))

    def test_scaled(self):
        small = JobModel(duration_mean_s=900.0).scaled(0.1)
        assert small.duration_mean_s == 90.0


class TestWorkloadGenerator:
    def test_fixed_cadence(self, vos, rng):
        gen = WorkloadGenerator(vos, JobModel(), rng)
        wl = gen.host_workload("h0", duration_s=10.0, interarrival_s=1.0)
        assert len(wl) == 10
        assert wl.arrivals.tolist() == list(np.arange(0.0, 10.0, 1.0))

    def test_start_offset(self, vos, rng):
        gen = WorkloadGenerator(vos, JobModel(), rng)
        wl = gen.host_workload("h0", duration_s=5.0, start_s=100.0)
        assert wl.arrivals[0] == 100.0 and wl.arrivals[-1] == 104.0

    def test_poisson_mean_rate(self, vos, rng):
        gen = WorkloadGenerator(vos, JobModel(), rng)
        wl = gen.host_workload("h0", duration_s=5000.0, interarrival_s=1.0,
                               poisson=True)
        assert len(wl) == pytest.approx(5000, rel=0.1)
        assert np.all(np.diff(wl.arrivals) > 0)

    def test_jobs_cover_all_vos(self, vos, rng):
        gen = WorkloadGenerator(vos, JobModel(), rng)
        wl = gen.host_workload("h0", duration_s=600.0)
        assert set(wl.vo_names) == {"vo0", "vo1", "vo2"}

    def test_job_materialization(self, vos, rng):
        gen = WorkloadGenerator(vos, JobModel(), rng)
        wl = gen.host_workload("h7", duration_s=5.0)
        job = wl.job_at(2)
        assert isinstance(job, Job)
        assert job.submission_host == "h7"
        assert job.vo == wl.vo_names[2]
        assert job.cpus == int(wl.cpus[2])

    def test_iteration_order(self, vos, rng):
        gen = WorkloadGenerator(vos, JobModel(), rng)
        wl = gen.host_workload("h0", duration_s=3.0)
        assert list(wl) == [(0.0, 0), (1.0, 1), (2.0, 2)]

    def test_fleet(self, vos, rng):
        gen = WorkloadGenerator(vos, JobModel(), rng)
        fleet = gen.fleet(["a", "b"], duration_s=10.0,
                          start_offsets={"b": 5.0})
        assert fleet["a"].arrivals[0] == 0.0
        assert fleet["b"].arrivals[0] == 5.0

    def test_deterministic(self, vos):
        def build():
            gen = WorkloadGenerator(vos, JobModel(),
                                    RngRegistry(3).stream("w"))
            return gen.host_workload("h", duration_s=50.0)
        w1, w2 = build(), build()
        assert w1.vo_names == w2.vo_names
        assert np.array_equal(w1.durations, w2.durations)

    def test_empty_registry_rejected(self, rng):
        with pytest.raises(ValueError):
            WorkloadGenerator(VORegistry(), JobModel(), rng)

    def test_validation(self, vos, rng):
        gen = WorkloadGenerator(vos, JobModel(), rng)
        with pytest.raises(ValueError):
            gen.host_workload("h", duration_s=0.0)


class TestTraceRecorder:
    def test_query_arrays(self):
        rec = TraceRecorder()
        rec.record_query(1.0, 3.5, timed_out=False, client="c0",
                         decision_point="dp0")
        rec.record_query(2.0, None, timed_out=True, client="c1",
                         decision_point="dp0")
        q = rec.query_arrays()
        assert q["response_s"][0] == pytest.approx(2.5)
        assert math.isnan(q["response_s"][1])
        assert q["timed_out"].tolist() == [False, True]
        assert rec.n_queries == 2

    def test_job_arrays(self):
        rec = TraceRecorder()
        j = Job(vo="vo0", group="g", user="u", duration_s=10.0)
        j.mark_created(0.0)
        j.mark_dispatched(1.0, "siteX")
        j.mark_running(2.0)
        j.mark_completed(12.0)
        j.handled_by_gruber = True
        j.scheduling_accuracy = 0.9
        rec.record_job(j)
        a = rec.job_arrays()
        assert a["queue_time_s"][0] == 1.0
        assert a["handled"][0]
        assert a["site"][0] == "siteX"
        assert not a["failed"][0]

    def test_incomplete_job_has_nans(self):
        rec = TraceRecorder()
        j = Job(vo="v", group="g", user="u")
        j.mark_created(5.0)
        rec.record_job(j)
        a = rec.job_arrays()
        assert math.isnan(a["started_at"][0])
        assert math.isnan(a["queue_time_s"][0])

    def test_empty_arrays(self):
        rec = TraceRecorder()
        assert len(rec.query_arrays()["sent_at"]) == 0
        assert len(rec.job_arrays()["jid"]) == 0

    def test_csv_roundtrip(self, tmp_path):
        rec = TraceRecorder()
        rec.record_query(1.0, 2.0, False, "c0", "dp0")
        rec.record_query(5.0, None, True, "c1", "dp1")
        path = str(tmp_path / "queries.csv")
        rec.save_queries_csv(path)
        loaded = TraceRecorder.load_queries_csv(path)
        q1, q2 = rec.query_arrays(), loaded.query_arrays()
        assert np.array_equal(q1["sent_at"], q2["sent_at"])
        assert np.array_equal(q1["timed_out"], q2["timed_out"])
        assert math.isnan(q2["responded_at"][1])

    def test_csv_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("not,a,real,header\n")
        with pytest.raises(ValueError):
            TraceRecorder.load_queries_csv(str(path))
